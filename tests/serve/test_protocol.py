"""Wire-protocol parser: framing, validation, resynchronization, fuzz.

The parser is the server's first line of defense: every malformed input
must come back as an ``ERROR``/``CLIENT_ERROR`` event (the connection
survives) and never as an exception -- the fuzz properties feed it
arbitrary bytes and arbitrary re-chunkings to pin that down.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.protocol import (
    BUSY,
    CRLF,
    END,
    ERROR,
    MAX_KEY_BYTES,
    MAX_LINE_BYTES,
    MAX_VALUE_BYTES,
    Command,
    ProtocolParser,
    client_error,
    encode_command,
    encode_stats,
    encode_value,
    server_error,
)


def drain(parser):
    events = []
    while True:
        event = parser.next_event()
        if event is None:
            return events
        events.append(event)


def parse_all(data: bytes):
    parser = ProtocolParser()
    parser.feed(data)
    return drain(parser)


class TestWellFormed:
    def test_get_single_and_multi(self):
        (single,) = parse_all(b"get foo\r\n")
        assert single.command.op == "get"
        assert single.command.keys == ["foo"]
        (multi,) = parse_all(b"get a b c\r\n")
        assert multi.command.keys == ["a", "b", "c"]

    def test_set_with_data_block(self):
        (event,) = parse_all(b"set k 7 0 5\r\nhello\r\n")
        command = event.command
        assert command.op == "set"
        assert command.keys == ["k"]
        assert command.flags == 7
        assert command.data == b"hello"
        assert not command.noreply

    def test_set_noreply(self):
        (event,) = parse_all(b"set k 0 0 2 noreply\r\nhi\r\n")
        assert event.command.noreply

    def test_set_data_may_contain_command_text(self):
        payload = b"END\r\nget x\r\nquit"
        data = b"set k 0 0 %d\r\n%s\r\n" % (len(payload), payload)
        (event,) = parse_all(data)
        assert event.command.data == payload

    def test_delete_and_controls(self):
        events = parse_all(b"delete k\r\nstats\r\nquit\r\n")
        assert [e.command.op for e in events] == ["delete", "stats", "quit"]

    def test_lf_only_lines_accepted(self):
        (event,) = parse_all(b"get foo\n")
        assert event.command.keys == ["foo"]

    def test_pipelined_commands(self):
        events = parse_all(
            b"set a 0 0 1\r\nx\r\nget a b\r\ndelete a noreply\r\n"
        )
        assert [e.command.op for e in events] == ["set", "get", "delete"]
        assert events[2].command.noreply


class TestMalformed:
    @pytest.mark.parametrize(
        "line",
        [
            b"frobnicate\r\n",
            b"\r\n",
            b"get\r\n",
            b"SETT k 0 0 1\r\n",
        ],
    )
    def test_unknown_or_empty_is_error(self, line):
        (event,) = parse_all(line)
        assert event.response == ERROR

    @pytest.mark.parametrize(
        "line",
        [
            b"set k 0 0\r\n",
            b"set k x 0 5\r\n",
            b"set k 0 0 five\r\n",
            b"delete\r\n",
            b"delete a b\r\n",
        ],
    )
    def test_bad_shapes_are_client_errors(self, line):
        (event,) = parse_all(line)
        assert event.response.startswith(b"CLIENT_ERROR")

    def test_oversized_key_rejected(self):
        long_key = b"k" * (MAX_KEY_BYTES + 1)
        (event,) = parse_all(b"get " + long_key + b"\r\n")
        assert event.response == client_error("bad key")
        (event,) = parse_all(b"set " + long_key + b" 0 0 1\r\n")
        assert event.response == client_error("bad key")

    def test_key_with_control_bytes_rejected(self):
        (event,) = parse_all("get k\x01y\r\n".encode("latin-1"))
        assert event.response is not None

    def test_oversized_value_rejected_without_buffering(self):
        size = MAX_VALUE_BYTES + 1
        (event,) = parse_all(f"set k 0 0 {size}\r\n".encode())
        assert event.response == server_error("object too large for cache")

    def test_negative_size_rejected(self):
        (event,) = parse_all(b"set k 0 0 -5\r\n")
        assert event.response == server_error("object too large for cache")

    def test_bad_data_trailer_resynchronizes(self):
        parser = ProtocolParser()
        parser.feed(b"set k 0 0 2\r\nhiXXtrailing\r\nget ok\r\n")
        events = drain(parser)
        assert events[0].response == client_error("bad data chunk")
        assert events[1].command.keys == ["ok"]

    def test_overlong_line_dropped_then_recovers(self):
        parser = ProtocolParser()
        parser.feed(b"g" * (MAX_LINE_BYTES + 10))
        (event,) = drain(parser)
        assert event.response == ERROR
        parser.feed(b"get ok\r\n")
        (event,) = drain(parser)
        assert event.command.keys == ["ok"]

    def test_non_ascii_command_line(self):
        (event,) = parse_all("get café\r\n".encode("utf-8"))
        assert event.response is not None


class TestIncrementalFeeding:
    def test_byte_at_a_time(self):
        parser = ProtocolParser()
        events = []
        for byte in b"set k 1 0 3\r\nabc\r\nget k\r\n":
            parser.feed(bytes([byte]))
            events.extend(drain(parser))
        assert [e.command.op for e in events] == ["set", "get"]
        assert events[0].command.data == b"abc"

    @settings(max_examples=50, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=40))
    def test_any_split_point_parses_identically(self, cut):
        stream = b"set key 3 0 4\r\nwxyz\r\nget key other\r\ndelete key\r\n"
        cut = min(cut, len(stream))
        parser = ProtocolParser()
        parser.feed(stream[:cut])
        events = drain(parser)
        parser.feed(stream[cut:])
        events += drain(parser)
        ops = [e.command.op for e in events]
        assert ops == ["set", "get", "delete"]


class TestFuzz:
    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=400))
    def test_arbitrary_bytes_never_raise(self, data):
        parser = ProtocolParser()
        parser.feed(data)
        for _ in range(500):
            event = parser.next_event()
            if event is None:
                break
            assert (event.command is None) != (event.response is None)

    @settings(max_examples=100, deadline=None)
    @given(
        chunks=st.lists(st.binary(max_size=60), max_size=12),
        tail=st.sampled_from([b"get sentinel\r\n", b"stats\r\n"]),
    )
    def test_garbage_then_valid_command_still_parses(self, chunks, tail):
        """Whatever junk came before, a newline boundary plus a valid
        command must produce that command -- the connection survives."""
        parser = ProtocolParser()
        for chunk in chunks:
            # Newline-free junk, so the tail starts on a line boundary
            # (a stray "\n" would otherwise glue junk onto our command).
            parser.feed(chunk.replace(b"\n", b"x").replace(b"\r", b"y"))
        drain(parser)
        parser.feed(b"\r\n")  # terminate any dangling partial line
        drain(parser)
        parser.feed(tail)
        events = [e for e in drain(parser) if e.command is not None]
        assert any(
            e.command.op in ("get", "stats") for e in events
        ), "valid command after garbage must parse"


class TestEncoders:
    def test_encode_value_round_trip_shape(self):
        block = encode_value("k", 9, b"abc")
        assert block == b"VALUE k 9 3\r\nabc\r\n"

    def test_encode_stats_ends_with_end(self):
        block = encode_stats([("a", 1), ("b", "x")])
        assert block == b"STAT a 1\r\nSTAT b x\r\n" + END

    def test_busy_is_a_server_error(self):
        assert BUSY == server_error("busy")

    @pytest.mark.parametrize(
        "command",
        [
            Command(op="get", keys=["a", "b"]),
            Command(op="set", keys=["k"], flags=3, data=b"v" + CRLF + b"w"),
            Command(op="set", keys=["k"], data=b"", noreply=True),
            Command(op="delete", keys=["k"], noreply=True),
            Command(op="stats"),
            Command(op="quit"),
        ],
    )
    def test_encode_command_round_trips_through_parser(self, command):
        (event,) = parse_all(encode_command(command))
        parsed = event.command
        assert parsed.op == command.op
        assert parsed.keys == command.keys
        assert parsed.data == command.data
        assert parsed.noreply == command.noreply

    def test_encode_unknown_op_raises(self):
        with pytest.raises(ValueError):
            encode_command(Command(op="flush"))
