"""Open-loop load generator: schedules, accounting, trace compilation."""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import ConfigurationError
from repro.serve.loadgen import (
    LoadGenerator,
    LoadResult,
    commands_from_trace,
)
from repro.serve.protocol import BUSY, ProtocolParser


class StubClient:
    """Scripted responder: answers each request from a canned list."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.seen = []

    async def request(self, data: bytes, op: str = "") -> bytes:
        self.seen.append((data, op))
        if not self.responses:
            return b"END\r\n"
        return self.responses.pop(0)


class TestSchedules:
    def test_fixed_offsets_evenly_spaced(self):
        generator = LoadGenerator(rate=100.0, duration_s=0.5, arrivals="fixed")
        offsets = generator.offsets()
        assert len(offsets) == 50
        assert offsets[0] == 0.0
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(gap == pytest.approx(0.01) for gap in gaps)

    def test_poisson_offsets_deterministic_per_seed(self):
        make = lambda seed: LoadGenerator(
            rate=500.0, duration_s=0.2, arrivals="poisson", seed=seed
        ).offsets()
        assert make(7) == make(7)
        assert make(7) != make(8)

    def test_poisson_mean_gap_matches_rate(self):
        offsets = LoadGenerator(
            rate=1000.0, duration_s=2.0, arrivals="poisson", seed=0
        ).offsets()
        assert len(offsets) == 2000
        assert offsets == sorted(offsets)
        mean_gap = offsets[-1] / (len(offsets) - 1)
        assert mean_gap == pytest.approx(1e-3, rel=0.1)

    def test_count_never_zero(self):
        assert len(LoadGenerator(rate=1.0, duration_s=0.01).offsets()) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0, "duration_s": 1.0},
            {"rate": 100.0, "duration_s": 0.0},
            {"rate": 100.0, "duration_s": 1.0, "arrivals": "bursty"},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadGenerator(**kwargs)


class TestAccounting:
    WORK = [(b"get k\r\n", "get")]

    def run(self, generator, clients):
        return asyncio.run(generator.run(clients, self.WORK))

    def test_completed_shed_error_tallies(self):
        responses = [
            b"VALUE k 0 1\r\nx\r\nEND\r\n",
            BUSY,
            b"SERVER_ERROR internal error\r\n",
            b"END\r\n",
            b"CLIENT_ERROR bad\r\n",
        ]
        client = StubClient(responses)
        generator = LoadGenerator(rate=5000.0, duration_s=0.001,
                                  arrivals="fixed")
        result = self.run(generator, [client])
        assert result.issued == 5
        assert result.completed == 2
        assert result.shed == 1
        assert result.errors == 2
        # Only completed requests are timed.
        assert result.histogram.count == 2
        assert result.achieved_rate == pytest.approx(
            result.completed / result.elapsed_s
        )

    def test_connection_error_counts_as_error(self):
        class Dropper:
            async def request(self, data, op=""):
                raise ConnectionResetError

        generator = LoadGenerator(rate=3000.0, duration_s=0.001,
                                  arrivals="fixed")
        result = self.run(generator, [Dropper()])
        assert result.errors == result.issued == 3
        assert result.completed == 0
        assert result.histogram.count == 0

    def test_round_robin_across_clients(self):
        clients = [StubClient([]) for _ in range(3)]
        generator = LoadGenerator(rate=6000.0, duration_s=0.001,
                                  arrivals="fixed")
        self.run(generator, clients)
        assert [len(c.seen) for c in clients] == [2, 2, 2]

    def test_work_cycles_when_shorter_than_schedule(self):
        client = StubClient([])
        generator = LoadGenerator(rate=4000.0, duration_s=0.001,
                                  arrivals="fixed")
        work = [(b"get a\r\n", "get"), (b"get b\r\n", "get")]
        asyncio.run(generator.run([client], work))
        assert [data for data, _ in client.seen] == [
            b"get a\r\n", b"get b\r\n", b"get a\r\n", b"get b\r\n",
        ]

    def test_empty_result_rates(self):
        result = LoadResult(offered_rate=100.0, duration_s=1.0,
                            arrivals="fixed")
        assert result.achieved_rate == 0.0


class TestTraceCompilation:
    def make_trace(self):
        from repro.sim.workloads import load_workload

        trace = load_workload(
            "zipf", scale=1.0, seed=0,
            apps=1, num_keys=200, requests_per_app=400,
        )
        return trace.compiled

    def test_commands_cover_ops_and_round_trip(self):
        compiled = self.make_trace()
        work = commands_from_trace(compiled, limit=300)
        assert 0 < len(work) <= 300
        parser = ProtocolParser()
        ops = set()
        for data, op in work:
            parser.feed(data)
            event = parser.next_event()
            assert event is not None and event.command is not None
            assert event.command.op == op
            ops.add(op)
            if op == "set":
                assert event.command.data is not None
                assert len(event.command.data) > 0
        assert "get" in ops

    def test_limit_respected_and_deterministic(self):
        compiled = self.make_trace()
        first = commands_from_trace(compiled, limit=50)
        second = commands_from_trace(self.make_trace(), limit=50)
        assert len(first) == 50
        assert first == second

    def test_empty_trace_rejected(self):
        class Empty:
            def iter_requests(self):
                return iter(())

        with pytest.raises(ConfigurationError):
            commands_from_trace(Empty(), limit=10)
