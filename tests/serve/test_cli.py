"""The ``repro-serve`` CLI: measurement flags, chaos knobs, shutdown.

The graceful-shutdown test runs the real listener in a subprocess and
SIGINTs it mid-pipeline: every queued response must arrive before the
socket closes and the process must exit 0 -- the drain contract, not a
timing assertion.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

from repro.serve.cli import main

FAST = [
    "--scale", "0.01", "--rate", "2000", "--duration", "0.05",
    "--arrivals", "fixed",
]


def one_error_line(capsys) -> str:
    err = capsys.readouterr().err.strip()
    assert err.count("\n") == 0, f"expected one line, got: {err!r}"
    return err


class TestMeasurementMode:
    def test_plain_measurement_runs(self, capsys):
        assert main(FAST) == 0
        out = capsys.readouterr().out
        assert "serve (" in out

    def test_chaos_flags_fire_live_faults(self, capsys):
        assert (
            main(
                FAST
                + [
                    "--crash", "1@30",
                    "--restart", "1@60",
                    "--retry-attempts", "3",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"]["crashes"][0]["crash_at"] == 30
        assert payload["retry"]["max_attempts"] == 3
        assert payload["faults"]["latency_timeline"]

    def test_degradation_flags_pass_through(self, capsys):
        assert (
            main(FAST + ["--queue-deadline", "0.5", "--max-inflight", "8"])
            == 0
        )

    def test_malformed_crash_spec_exits_2(self, capsys):
        assert main(FAST + ["--crash", "one@ten"]) == 2
        assert "SHARD@OFFSET" in one_error_line(capsys)
        assert main(FAST + ["--crash", "3"]) == 2

    def test_crash_bad_shard_exits_2(self, capsys):
        assert main(FAST + ["--shards", "2", "--crash", "7@10"]) == 2
        assert "shard" in one_error_line(capsys)

    def test_bad_listen_exits_2(self, capsys):
        assert main(["--listen", "nocolon"]) == 2
        assert main(["--listen", "127.0.0.1:notaport"]) == 2


class TestListenerGracefulShutdown:
    def test_sigint_drains_pipeline_before_exit(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--listen", "127.0.0.1:0",
                "--scale", "0.01",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving on" in banner
            port = int(banner.split()[2].rsplit(":", 1)[1])
            with socket.create_connection(("127.0.0.1", port), 10) as sock:
                sock.sendall(
                    b"set a 0 0 1\r\nA\r\n" b"get a\r\n" b"get missing\r\n"
                )
                # Give the server a beat to ingest, then interrupt it
                # with the pipeline's responses still in flight.
                time.sleep(0.2)
                proc.send_signal(signal.SIGINT)
                sock.settimeout(10)
                data = b""
                while b"END\r\n" not in data or data.count(b"END\r\n") < 2:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            assert data == (
                b"STORED\r\nVALUE a 0 1\r\nA\r\nEND\r\nEND\r\n"
            )
            out, err = proc.communicate(timeout=15)
            assert proc.returncode == 0, err
            assert "stopped (drained)" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
