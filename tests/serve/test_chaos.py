"""Chaos serving: fault injection through the live data plane.

The contract under test: fault events land at exact request-count
offsets on the virtual-time axis no matter how the event loop
interleaves batches, so a fixed seed reproduces the identical fault
timeline; dead shards answer per the schedule's policy (failover
re-routes, miss-through tags misses); and the serve report grows a
``faults`` section with recovery metrics plus the scheduled-index
latency timeline. Latency *values* are wall-clock and never asserted --
only counts, offsets and shapes.
"""

from __future__ import annotations

import json

from repro.cache.slabs import SlabGeometry
from repro.cluster import Cluster, ClusterConfig, FaultInjector, FaultSchedule
from repro.serve.harness import ServeConfig, run_serve
from repro.sim.runner import run_scenario
from repro.sim.scenario import Scenario
from repro.sim.workloads import load_workload

ZIPF_PARAMS = {"apps": 1, "num_keys": 500, "requests_per_app": 4000}

FAULT_EVENTS = [
    {"kind": "crash", "shard": 1, "at": 100},
    {"kind": "restart", "shard": 1, "at": 200},
]


def make_cluster_and_trace(shards=4):
    trace = load_workload("zipf", scale=1.0, seed=0, **ZIPF_PARAMS)
    cluster = Cluster(ClusterConfig(shards=shards), SlabGeometry.default())
    return cluster, trace.compiled


def attach(cluster, events=FAULT_EVENTS, policy="failover"):
    schedule = FaultSchedule.from_dict(
        {"events": [dict(e) for e in events], "policy": policy}
    )
    cluster.attach_faults(FaultInjector(cluster, schedule))
    return cluster.fault_injector


def serve_config(**overrides):
    fields = dict(
        rate=8000.0, duration_s=0.05, arrivals="fixed", connections=2
    )
    fields.update(overrides)
    return ServeConfig(**fields)


class TestFaultsThroughServing:
    def test_events_fire_at_exact_offsets(self):
        cluster, compiled = make_cluster_and_trace()
        attach(cluster)
        report = run_serve(cluster, compiled, serve_config(), seed=0)
        faults = report.faults
        assert faults is not None
        crash = faults["crashes"][0]
        assert crash["shard"] == 1
        assert crash["crash_at"] == 100
        assert crash["restart_at"] == 200
        assert crash["downtime_requests"] == 100
        assert report.result.completed == report.result.issued == 400

    def test_fault_section_rides_report_payload(self):
        cluster, compiled = make_cluster_and_trace()
        attach(cluster)
        payload = run_serve(
            cluster, compiled, serve_config(), seed=0
        ).to_dict()
        faults = payload["faults"]
        assert faults["policy"] == "failover"
        timeline = faults["latency_timeline"]
        assert timeline, "serve+faults must produce latency windows"
        for window in timeline:
            assert set(window) >= {
                "start", "stop", "completed", "shed", "errors",
                "timeouts", "p50_ms", "p99_ms",
            }
        # Windows tile the scheduled index space exactly.
        assert timeline[0]["start"] == 0
        assert timeline[-1]["stop"] == payload["requests"]
        for left, right in zip(timeline, timeline[1:]):
            assert left["stop"] == right["start"]

    def test_same_seed_reproduces_fault_timeline(self):
        sections = []
        occupancies = []
        for _ in range(2):
            cluster, compiled = make_cluster_and_trace()
            attach(cluster)
            report = run_serve(
                cluster,
                compiled,
                serve_config(arrivals="poisson"),
                seed=3,
            )
            section = dict(report.faults)
            timeline = section.pop("latency_timeline")
            sections.append(json.dumps(section, sort_keys=True))
            occupancies.append(
                [
                    (w["start"], w["stop"], w["completed"], w["shed"])
                    for w in timeline
                ]
            )
        assert sections[0] == sections[1]
        assert occupancies[0] == occupancies[1]

    def test_miss_through_tags_dead_requests(self):
        cluster, compiled = make_cluster_and_trace()
        attach(
            cluster,
            events=[{"kind": "crash", "shard": 1, "at": 100}],
            policy="miss-through",
        )
        report = run_serve(cluster, compiled, serve_config(), seed=0)
        assert report.faults["dead_requests"] > 0
        # Dead-shard requests are still answered (as misses), never
        # errored or hung.
        assert report.result.errors == 0
        assert report.result.completed == report.result.issued

    def test_failover_reroutes_instead_of_missing(self):
        cluster, compiled = make_cluster_and_trace()
        attach(cluster, events=[{"kind": "crash", "shard": 1, "at": 100}])
        report = run_serve(cluster, compiled, serve_config(), seed=0)
        assert report.faults["dead_requests"] == 0
        assert report.result.errors == 0
        # The dead shard's traffic landed on live successors.
        loads = [server.stats.total for server in cluster.servers]
        assert sum(s.gets + s.sets for s in loads) == report.result.issued

    def test_no_injector_no_faults_section(self):
        cluster, compiled = make_cluster_and_trace()
        report = run_serve(cluster, compiled, serve_config(), seed=0)
        assert report.faults is None
        assert report.result.windows == []
        assert run_serve.__module__  # keep flake happy about usage

    def test_restart_rebuilds_cold_through_factories(self):
        cluster, compiled = make_cluster_and_trace()
        attach(cluster)
        run_serve(cluster, compiled, serve_config(), seed=0)
        # After the restart the shard is live again and serving.
        assert all(cluster.live_mask())
        assert cluster.servers[1].stats.total.gets > 0


class TestScenarioChaosServing:
    def make_scenario(self, **overrides):
        fields = dict(
            workload="zipf",
            workload_params=dict(ZIPF_PARAMS),
            scale=1.0,
            seed=0,
            cluster={"shards": 4},
            serve={
                "rate": 8000.0,
                "duration_s": 0.05,
                "arrivals": "fixed",
                "connections": 2,
            },
            faults={"events": [dict(e) for e in FAULT_EVENTS]},
        )
        fields.update(overrides)
        return Scenario(**fields)

    def test_run_scenario_serves_through_faults(self):
        result = run_scenario(self.make_scenario())
        report = result.cluster_report
        serve = report["serve"]
        assert serve["faults"]["crashes"][0]["crash_at"] == 100
        assert serve["errors"] == 0
        # The offline faults section reports the same injector.
        assert report["faults"]["crashes"][0]["crash_at"] == 100

    def test_scenario_json_round_trip(self):
        scenario = self.make_scenario(
            serve={
                "rate": 8000.0,
                "duration_s": 0.05,
                "retry": {"max_attempts": 3, "deadline_s": 0.1},
                "queue_deadline_s": 0.2,
                "max_inflight": 64,
            }
        )
        clone = Scenario.from_json(scenario.to_json())
        assert clone.to_dict() == scenario.to_dict()
        assert clone.serve["retry"]["max_attempts"] == 3
        # Normalization filled the retry defaults in.
        assert clone.serve["retry"]["budget"] == 0.2

    def test_sweepable_retry_axis(self):
        from repro.sim.sweep import Sweep

        grid = Sweep(
            base=self.make_scenario(),
            axes={
                "serve.retry.max_attempts": [1, 3],
                "faults.policy": ["failover", "miss-through"],
            },
        ).scenarios()
        assert [s.serve["retry"]["max_attempts"] for s in grid] == [
            1, 1, 3, 3,
        ]
        assert [s.faults["policy"] for s in grid] == [
            "failover", "miss-through", "failover", "miss-through",
        ]

    def test_rendered_report_shows_outage_timeline(self):
        from repro.cluster.cluster import render_cluster_report

        result = run_scenario(self.make_scenario())
        text = "\n".join(render_cluster_report(result.cluster_report))
        assert "p99 timeline" in text
        assert "faults (failover)" in text
