"""Client retry/backoff: policy validation, retry semantics, hedging.

The safety contracts pinned here: mutating ops retry only on ``BUSY``
(provably never executed), GETs additionally retry connection errors
(idempotent), the retry budget bounds total retries, deadlines are
measured from the scheduled arrival, and a ``noreply`` SET's side
effect applies at most once no matter how aggressive the policy -- the
Hypothesis property drives that last one through the real server with
a shedding queue.
"""

from __future__ import annotations

import asyncio
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.slabs import SlabGeometry
from repro.cluster import Cluster, ClusterConfig
from repro.common.errors import ConfigurationError
from repro.serve.loadgen import LoadGenerator, RetryPolicy
from repro.serve.protocol import BUSY
from repro.serve.server import CacheServerProcess
from repro.serve.service import CacheService

GEO = SlabGeometry.default()


class ScriptedClient:
    """Answers ``request`` from a script of responses or exceptions."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    async def request(self, data: bytes, op: str = "get") -> bytes:
        self.calls.append((data, op))
        step = self.script.pop(0) if self.script else b"END\r\n"
        if isinstance(step, BaseException):
            raise step
        return step


def run_generator(clients, work, retry, **kwargs):
    # rate x duration rounds to exactly one scheduled request: each
    # test drives a single request through the retry loop.
    generator = LoadGenerator(
        rate=kwargs.pop("rate", 1000.0),
        duration_s=kwargs.pop("duration_s", 0.001),
        arrivals="fixed",
        seed=kwargs.pop("seed", 0),
        retry=retry,
        **kwargs,
    )
    return asyncio.run(generator.run(clients, work))


class TestRetryPolicy:
    def test_round_trip_and_defaults(self):
        policy = RetryPolicy(max_attempts=3, deadline_s=0.5)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert RetryPolicy.from_dict(None) == RetryPolicy()
        assert not RetryPolicy().enabled
        assert policy.enabled

    @pytest.mark.parametrize(
        ("fields", "match"),
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"base_backoff_s": -1.0}, "base_backoff_s"),
            ({"base_backoff_s": 0.2, "max_backoff_s": 0.1}, "max_backoff_s"),
            ({"jitter": 1.5}, "jitter"),
            ({"deadline_s": -0.1}, "deadline_s"),
            ({"budget": -1.0}, "budget"),
            ({"hedge_after_s": -0.5}, "hedge_after_s"),
        ],
    )
    def test_field_validation(self, fields, match):
        with pytest.raises(ConfigurationError, match=match):
            RetryPolicy(**fields)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown retry"):
            RetryPolicy.from_dict({"max_attempts": 2, "attempts": 2})
        with pytest.raises(ConfigurationError, match="mapping"):
            RetryPolicy.from_dict([1, 2])

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_backoff_s=0.010,
            max_backoff_s=0.030,
            jitter=0.0,
        )
        rng = random.Random(0)
        steps = [policy.backoff_s(k, rng) for k in (1, 2, 3, 4)]
        assert steps == [0.010, 0.020, 0.030, 0.030]

    def test_jitter_is_seed_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=3, base_backoff_s=0.010, jitter=0.5
        )
        first = [policy.backoff_s(1, random.Random(42)) for _ in range(3)]
        assert first[0] == first[1] == first[2]
        assert 0.005 <= first[0] <= 0.010


class TestRetrySemantics:
    def work(self, op="get"):
        if op == "set":
            return [(b"set k 0 0 1\r\nV\r\n", "set")]
        return [(b"get k\r\n", "get")]

    def test_busy_get_retries_until_success(self):
        client = ScriptedClient([BUSY, BUSY, b"VALUE k 0 1\r\nV\r\nEND\r\n"])
        result = run_generator(
            [client],
            self.work(),
            RetryPolicy(max_attempts=3, base_backoff_s=0.0, budget=10.0),
        )
        assert result.completed == 1
        assert result.retries == 2
        assert result.shed == 0

    def test_busy_set_retries_too(self):
        # BUSY means the queue rejected the command outright -- safe to
        # retry even a mutation.
        client = ScriptedClient([BUSY, b"STORED\r\n"])
        result = run_generator(
            [client],
            self.work("set"),
            RetryPolicy(max_attempts=3, base_backoff_s=0.0, budget=10.0),
        )
        assert result.completed == 1
        assert result.retries == 1

    def test_connection_error_retries_get_only(self):
        get_client = ScriptedClient(
            [ConnectionResetError(), b"VALUE k 0 1\r\nV\r\nEND\r\n"]
        )
        result = run_generator(
            [get_client],
            self.work(),
            RetryPolicy(max_attempts=3, base_backoff_s=0.0, budget=10.0),
        )
        assert result.completed == 1
        assert result.retries == 1

        set_client = ScriptedClient([ConnectionResetError(), b"STORED\r\n"])
        result = run_generator(
            [set_client],
            self.work("set"),
            RetryPolicy(max_attempts=3, base_backoff_s=0.0, budget=10.0),
        )
        # A SET whose connection died may have executed server-side:
        # never retried, surfaces as an error.
        assert result.errors == 1
        assert result.retries == 0
        assert len(set_client.calls) == 1

    def test_client_error_is_terminal(self):
        client = ScriptedClient([b"CLIENT_ERROR bad\r\n", b"END\r\n"])
        result = run_generator(
            [client],
            self.work(),
            RetryPolicy(max_attempts=3, base_backoff_s=0.0, budget=10.0),
        )
        assert result.errors == 1
        assert result.retries == 0

    def test_exhausted_attempts_count_shed(self):
        client = ScriptedClient([BUSY, BUSY, BUSY])
        result = run_generator(
            [client],
            self.work(),
            RetryPolicy(max_attempts=3, base_backoff_s=0.0, budget=10.0),
        )
        assert result.shed == 1
        assert result.retries == 2

    def test_budget_zero_never_retries(self):
        client = ScriptedClient([BUSY, b"END\r\n"])
        result = run_generator(
            [client],
            self.work(),
            RetryPolicy(max_attempts=5, base_backoff_s=0.0, budget=0.0),
        )
        assert result.retries == 0
        assert result.shed == 1

    def test_deadline_expires_as_timeout(self):
        client = ScriptedClient([BUSY] * 50)
        result = run_generator(
            [client],
            self.work(),
            RetryPolicy(
                max_attempts=50,
                base_backoff_s=0.050,
                max_backoff_s=0.050,
                jitter=0.0,
                deadline_s=0.010,
                budget=100.0,
            ),
        )
        assert result.timeouts == 1
        assert result.completed == 0

    def test_no_policy_is_fire_once(self):
        client = ScriptedClient([BUSY, b"END\r\n"])
        result = run_generator([client], self.work(), None)
        assert result.shed == 1
        assert result.retries == 0
        assert len(client.calls) == 1


class TestHedgedReads:
    def test_slow_primary_hedges_to_second_client(self):
        class SlowClient:
            async def request(self, data, op="get"):
                await asyncio.sleep(0.2)
                return b"VALUE k 0 1\r\nS\r\nEND\r\n"

        fast = ScriptedClient([b"VALUE k 0 1\r\nF\r\nEND\r\n"])
        result = run_generator(
            [SlowClient(), fast],
            [(b"get k\r\n", "get")],
            RetryPolicy(hedge_after_s=0.005),
        )
        assert result.completed == 1
        assert result.hedges == 1
        assert fast.calls, "the hedge went to the second client"
        # The hedged response arrived long before the slow primary.
        assert result.histogram.max < 0.15

    def test_hedge_needs_two_clients(self):
        client = ScriptedClient([b"END\r\n"])
        result = run_generator(
            [client], [(b"get k\r\n", "get")], RetryPolicy(hedge_after_s=0.001)
        )
        assert result.hedges == 0
        assert result.completed == 1


class CountingService(CacheService):
    """Counts how many times each SET key actually executes."""

    def __init__(self, cluster):
        super().__init__(cluster)
        self.set_executions = {}

    def execute(self, commands):
        for command in commands:
            if command.op == "set":
                key = command.keys[0]
                self.set_executions[key] = (
                    self.set_executions.get(key, 0) + 1
                )
        return super().execute(commands)


class TestNoreplyNeverDuplicated:
    @settings(max_examples=20, deadline=None)
    @given(
        sets=st.integers(min_value=1, max_value=12),
        queue_depth=st.integers(min_value=1, max_value=4),
        max_attempts=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_noreply_set_executes_at_most_once(
        self, sets, queue_depth, max_attempts, seed
    ):
        """However aggressive the retry policy and however hard the
        server sheds, a ``noreply`` SET's side effect applies at most
        once: it produces no response, so the retry loop structurally
        never sees a failure to retry."""

        async def scenario():
            cluster = Cluster(ClusterConfig(shards=2), GEO)
            service = CountingService(cluster)
            server = CacheServerProcess(
                service, backpressure="shed", queue_depth=queue_depth
            )
            await server.start()
            from repro.serve.server import MemoryClient

            clients = [MemoryClient(server), MemoryClient(server)]
            work = [
                (b"set nk%d 0 0 1 noreply\r\nV\r\n" % i, "set")
                for i in range(sets)
            ]
            generator = LoadGenerator(
                rate=50_000.0,
                duration_s=sets / 50_000.0,
                arrivals="fixed",
                seed=seed,
                retry=RetryPolicy(
                    max_attempts=max_attempts,
                    base_backoff_s=0.0,
                    budget=100.0,
                ),
            )
            result = await generator.run(clients, work)
            await server.close()
            return service.set_executions, result

        executions, result = asyncio.run(scenario())
        assert all(count == 1 for count in executions.values())
        # Every noreply SET reports success immediately -- no retries,
        # no errors, whatever the server shed.
        assert result.retries == 0
        assert result.errors == 0
        assert result.completed == result.issued
