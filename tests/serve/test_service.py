"""CacheService: wire semantics over the batch path, batch == oracle."""

from __future__ import annotations


from repro.cache.slabs import SlabGeometry
from repro.cluster import Cluster, ClusterConfig
from repro.serve.protocol import (
    DELETED,
    END,
    NOT_FOUND,
    STORED,
    Command,
)
from repro.serve.service import CacheService

GEO = SlabGeometry.default()


def make_service(shards=4, replication=1):
    cluster = Cluster(
        ClusterConfig(shards=shards, replication=replication), GEO
    )
    return CacheService(cluster)


def one(service, command):
    (response,) = service.execute([command])
    return response


class TestWireSemantics:
    def test_set_get_delete_round_trip(self):
        service = make_service()
        assert one(service, Command(op="set", keys=["k"], flags=5,
                                    data=b"hello")) == STORED
        response = one(service, Command(op="get", keys=["k"]))
        assert response == b"VALUE k 5 5\r\nhello\r\n" + END
        assert one(service, Command(op="delete", keys=["k"])) == DELETED
        assert one(service, Command(op="delete", keys=["k"])) == NOT_FOUND

    def test_get_miss_returns_bare_end(self):
        service = make_service()
        assert one(service, Command(op="get", keys=["never"])) == END

    def test_multi_get_mixes_hits_and_misses(self):
        service = make_service()
        service.execute([Command(op="set", keys=["a"], data=b"x")])
        response = one(service, Command(op="get", keys=["a", "miss", "a"]))
        # Both "a" occurrences answer; "miss" contributes nothing.
        assert response.count(b"VALUE a") == 2
        assert b"miss" not in response
        assert response.endswith(END)

    def test_engine_filled_key_serves_synthesized_payload(self):
        """The trace-replay convention fills engines on a GET miss; the
        *second* GET therefore hits and must serve deterministic bytes
        of the remembered default size."""
        service = make_service(shards=1)
        first = one(service, Command(op="get", keys=["warm"]))
        assert first == END
        second = one(service, Command(op="get", keys=["warm"]))
        assert second.startswith(b"VALUE warm 0 100\r\n")
        third = one(service, Command(op="get", keys=["warm"]))
        assert second == third

    def test_oversized_set_is_preset_and_does_not_poison_batch(self):
        service = make_service()
        huge = b"x" * (2 << 20)
        responses = service.execute(
            [
                Command(op="set", keys=["ok"], data=b"fine"),
                Command(op="set", keys=["huge"], data=huge),
                Command(op="get", keys=["ok"]),
            ]
        )
        assert responses[0] == STORED
        assert responses[1].startswith(b"SERVER_ERROR object too large")
        assert responses[2].startswith(b"VALUE ok")

    def test_stats_and_quit(self):
        service = make_service()
        service.execute([Command(op="set", keys=["k"], data=b"v")])
        stats, farewell = service.execute(
            [Command(op="stats"), Command(op="quit")]
        )
        assert stats.startswith(b"STAT cmd_get")
        assert b"STAT shards 4" in stats
        assert stats.endswith(END)
        assert farewell == b""

    def test_default_app_registered_lazily(self):
        service = make_service()
        assert "serve" not in service.cluster.servers[0].engines
        service.execute([Command(op="get", keys=["plain"])])
        assert "serve" in service.cluster.servers[0].engines

    def test_app_prefix_routes_to_registered_tenant(self):
        from repro.cache.engines import FirstComeFirstServeEngine

        cluster = Cluster(ClusterConfig(shards=2), GEO)
        cluster.add_app(
            "zipf01",
            1 << 20,
            lambda shard, share: FirstComeFirstServeEngine(
                "zipf01", share, GEO
            ),
        )
        service = CacheService(cluster)
        assert service.app_of_key("zipf01:z:9") == "zipf01"
        assert service.app_of_key("zipf99:z:9") == "serve"
        assert service.app_of_key("plain") == "serve"
        service.execute([Command(op="get", keys=["zipf01:z:9"])])
        stats = cluster.aggregate_stats()
        assert stats.app_hit_rate("zipf01") == 0.0  # one miss, counted


class TestBatchOracleParity:
    def test_responses_identical_to_per_request_path(self):
        commands = [
            Command(op="set", keys=["a"], flags=1, data=b"one"),
            Command(op="get", keys=["a", "b"]),
            Command(op="set", keys=["b"], flags=2, data=b"two"),
            Command(op="get", keys=["b"]),
            Command(op="delete", keys=["a"]),
            Command(op="get", keys=["a"]),
            Command(op="set", keys=["big"], data=b"z" * (2 << 20)),
            Command(op="stats"),
        ]
        batch = make_service(shards=3, replication=2)
        oracle = make_service(shards=3, replication=2)
        assert batch.execute(commands) == oracle.execute_per_request(
            commands
        )
