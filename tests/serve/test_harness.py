"""Serve harness + scenario wiring: config, report shape, dispatch.

These are the integration seams: the ``serve`` block round-trips
through :class:`ServeConfig`, ``run_serve`` drives a real cluster
end-to-end over the in-memory transport, and ``run_scenario`` swaps
the offline replay for live serving when the block is present. All
asserts are shape/accounting only -- no latency thresholds, so tier-1
stays immune to scheduler jitter.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.serve.harness import ServeConfig, ServeReport, run_serve
from repro.sim.runner import run_scenario
from repro.sim.scenario import Scenario

ZIPF_PARAMS = {"apps": 1, "num_keys": 500, "requests_per_app": 2000}

SERVE_BLOCK = {
    "rate": 4000.0,
    "duration_s": 0.05,
    "arrivals": "fixed",
    "backpressure": "queue",
    "connections": 2,
}


def make_scenario(**overrides):
    fields = dict(
        workload="zipf",
        workload_params=dict(ZIPF_PARAMS),
        scale=1.0,
        seed=0,
        cluster={"shards": 2},
        serve=dict(SERVE_BLOCK),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestServeConfig:
    def test_defaults_valid_and_round_trip(self):
        config = ServeConfig()
        assert ServeConfig.from_dict(config.to_dict()) == config
        assert ServeConfig.from_dict(None) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown serve"):
            ServeConfig.from_dict({"rate": 100.0, "ratee": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            ServeConfig.from_dict([("rate", 100.0)])

    @pytest.mark.parametrize(
        ("fields", "match"),
        [
            ({"rate": 0}, "rate"),
            ({"duration_s": -1.0}, "duration_s"),
            ({"arrivals": "uniform"}, "arrivals"),
            ({"backpressure": "drop"}, "backpressure"),
            ({"connections": 0}, "connections"),
            ({"queue_depth": 0}, "queue_depth"),
            ({"max_batch": 0}, "max_batch"),
            ({"transport": "udp"}, "transport"),
        ],
    )
    def test_each_field_validated(self, fields, match):
        with pytest.raises(ConfigurationError, match=match):
            ServeConfig(**fields)


class TestRunServe:
    def make_cluster_and_trace(self):
        from repro.cache.slabs import SlabGeometry
        from repro.cluster import Cluster, ClusterConfig
        from repro.sim.workloads import load_workload

        trace = load_workload("zipf", scale=1.0, seed=0, **ZIPF_PARAMS)
        cluster = Cluster(ClusterConfig(shards=2), SlabGeometry.default())
        return cluster, trace.compiled

    def test_memory_transport_end_to_end(self):
        cluster, compiled = self.make_cluster_and_trace()
        config = ServeConfig(
            rate=4000.0, duration_s=0.05, arrivals="fixed", connections=2
        )
        report = run_serve(cluster, compiled, config, seed=0)
        assert isinstance(report, ServeReport)
        result = report.result
        assert result.issued == 200
        assert result.completed + result.shed + result.errors == 200
        assert result.errors == 0
        assert result.completed > 0
        assert result.histogram.count == result.completed
        # The served requests landed in the cluster's counters, so the
        # usual cluster reporting works on the same object afterwards.
        stats = cluster.aggregate_stats()
        assert stats.total.gets + stats.total.sets > 0

    def test_report_payload_shape(self):
        cluster, compiled = self.make_cluster_and_trace()
        config = ServeConfig(rate=2000.0, duration_s=0.05, arrivals="fixed")
        payload = run_serve(cluster, compiled, config, seed=0).to_dict()
        assert payload["requests"] == 100
        assert payload["arrivals"] == "fixed"
        assert payload["backpressure"] == "queue"
        assert payload["transport"] == "memory"
        assert payload["offered_rate"] == 2000.0
        assert payload["achieved_rate"] > 0
        assert set(payload["latency_ms"]) == {
            "p50", "p95", "p99", "p999", "mean", "max"
        }
        depths = payload["queue_depth"]
        assert depths["batches"] >= 1
        assert len(depths["depths"]) == depths["batches"]

    def test_per_request_oracle_path_serves_too(self):
        cluster, compiled = self.make_cluster_and_trace()
        config = ServeConfig(
            rate=1000.0, duration_s=0.05, arrivals="fixed", per_request=True
        )
        report = run_serve(cluster, compiled, config, seed=0)
        assert report.result.completed == report.result.issued == 50


class TestScenarioValidation:
    def test_serve_requires_cluster(self):
        with pytest.raises(ConfigurationError, match="cluster"):
            make_scenario(cluster=None)

    def test_serve_accepts_fault_events(self):
        scenario = make_scenario(
            faults={"events": [{"kind": "crash", "shard": 0, "at": 10}]}
        )
        assert scenario.serve is not None
        assert scenario.faults["events"]
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone.faults == scenario.faults
        assert clone.serve == scenario.serve

    def test_serve_allows_empty_fault_block(self):
        scenario = make_scenario(faults={"events": []})
        assert scenario.serve is not None

    def test_serve_block_normalized_with_defaults(self):
        scenario = make_scenario(serve={"rate": 123.0})
        assert scenario.serve["rate"] == 123.0
        assert scenario.serve["backpressure"] == "queue"
        assert scenario.serve["transport"] == "memory"

    def test_bad_serve_field_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="arrivals"):
            make_scenario(serve={"arrivals": "bursty"})
        with pytest.raises(ConfigurationError, match="unknown serve"):
            make_scenario(serve={"ratee": 5})

    def test_label_includes_serve_rate(self):
        assert "/serve-4000" in make_scenario().label()

    def test_dict_round_trip_preserves_serve(self):
        scenario = make_scenario()
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone.serve == scenario.serve
        assert clone.to_dict() == scenario.to_dict()


class TestRunScenarioDispatch:
    def test_serve_block_produces_serve_section(self):
        result = run_scenario(make_scenario())
        report = result.cluster_report
        assert report is not None
        serve = report["serve"]
        assert serve["requests"] == 200
        assert serve["completed"] > 0
        assert serve["errors"] == 0
        # The replay-side numbers come from the same live run.
        assert 0.0 <= result.overall_hit_rate <= 1.0
        assert report["shards"]

    def test_without_serve_block_no_serve_section(self):
        result = run_scenario(make_scenario(serve=None))
        assert result.cluster_report.get("serve") is None

    def test_serve_with_rebalance_advances_epochs(self):
        scenario = make_scenario(
            serve=dict(SERVE_BLOCK, rate=8000.0),
            rebalance={"epoch_requests": 50, "policy": "load"},
        )
        result = run_scenario(scenario)
        assert result.cluster_report["rebalance"]["epochs"] >= 1

    def test_rendered_report_mentions_serving(self):
        from repro.cluster.cluster import render_cluster_report

        result = run_scenario(make_scenario())
        text = "\n".join(render_cluster_report(result.cluster_report))
        assert "serve (" in text
        assert "p99" in text
        assert "queue depth" in text
