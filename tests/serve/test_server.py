"""The asyncio server: loopback TCP round-trips, overload, robustness.

The acceptance bar: a real socket client can round-trip
get/set/delete; malformed input answers an error without killing the
connection or the server; an abrupt disconnect mid-pipeline never
leaks a request-queue slot; shed backpressure answers
``SERVER_ERROR busy``; concurrent connections each get their own
correctly-ordered responses.

Every test runs its own event loop via ``asyncio.run`` -- no plugin
dependencies, and no wall-clock assertions that could flake in CI.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.slabs import SlabGeometry
from repro.cluster import Cluster, ClusterConfig
from repro.serve.protocol import BUSY, Command
from repro.serve.server import CacheServerProcess, MemoryClient, TCPClient
from repro.serve.service import CacheService

GEO = SlabGeometry.default()


def make_server(**kwargs) -> CacheServerProcess:
    cluster = Cluster(ClusterConfig(shards=2), GEO)
    return CacheServerProcess(CacheService(cluster), **kwargs)


async def raw_client(host, port):
    return await asyncio.open_connection(host, port)


async def send_and_read(writer, reader, data: bytes, until: bytes) -> bytes:
    writer.write(data)
    await writer.drain()
    return await reader.readuntil(until)


class TestLoopbackTCP:
    def test_set_get_delete_round_trip(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            reader, writer = await raw_client(host, port)
            try:
                stored = await send_and_read(
                    writer, reader, b"set k 3 0 5\r\nhello\r\n", b"\r\n"
                )
                assert stored == b"STORED\r\n"
                value = await send_and_read(
                    writer, reader, b"get k\r\n", b"END\r\n"
                )
                assert value == b"VALUE k 3 5\r\nhello\r\nEND\r\n"
                deleted = await send_and_read(
                    writer, reader, b"delete k\r\n", b"\r\n"
                )
                assert deleted == b"DELETED\r\n"
                missed = await send_and_read(
                    writer, reader, b"get k\r\n", b"END\r\n"
                )
                assert missed == b"END\r\n"
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_pipelined_commands_answer_in_order(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            reader, writer = await raw_client(host, port)
            try:
                writer.write(
                    b"set a 0 0 1\r\nA\r\n"
                    b"set b 0 0 1\r\nB\r\n"
                    b"get a\r\n"
                    b"get b\r\n"
                    b"delete a\r\n"
                )
                await writer.drain()
                expected = (
                    b"STORED\r\nSTORED\r\n"
                    b"VALUE a 0 1\r\nA\r\nEND\r\n"
                    b"VALUE b 0 1\r\nB\r\nEND\r\n"
                    b"DELETED\r\n"
                )
                got = await reader.readexactly(len(expected))
                assert got == expected
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_malformed_command_keeps_connection_alive(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            reader, writer = await raw_client(host, port)
            try:
                err = await send_and_read(
                    writer, reader, b"frobnicate\r\n", b"\r\n"
                )
                assert err == b"ERROR\r\n"
                err = await send_and_read(
                    writer, reader, b"set k 0 0\r\n", b"\r\n"
                )
                assert err.startswith(b"CLIENT_ERROR")
                # Bad data trailer, then a valid command on the same
                # connection -- the parser resynchronizes.
                writer.write(b"set k 0 0 2\r\nXYZW\r\nget ok\r\n")
                await writer.drain()
                chunk = await reader.readuntil(b"END\r\n")
                assert chunk.startswith(b"CLIENT_ERROR bad data chunk")
                assert chunk.endswith(b"END\r\n")
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_quit_closes_the_connection(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            reader, writer = await raw_client(host, port)
            writer.write(b"set k 0 0 1\r\nZ\r\nquit\r\n")
            await writer.drain()
            data = await reader.read()
            assert data == b"STORED\r\n"  # then EOF
            writer.close()
            await server.close()

        asyncio.run(scenario())

    def test_noreply_suppresses_the_response(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            reader, writer = await raw_client(host, port)
            try:
                writer.write(b"set k 0 0 1 noreply\r\nQ\r\nget k\r\n")
                await writer.drain()
                data = await reader.readuntil(b"END\r\n")
                assert data == b"VALUE k 0 1\r\nQ\r\nEND\r\n"
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_concurrent_connections_are_isolated(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()

            async def worker(index: int) -> None:
                reader, writer = await raw_client(host, port)
                try:
                    key = f"key{index}"
                    value = f"val{index}".encode()
                    writer.write(
                        f"set {key} 0 0 {len(value)}\r\n".encode()
                        + value
                        + b"\r\n"
                        + f"get {key}\r\n".encode()
                    )
                    await writer.drain()
                    data = await reader.readuntil(b"END\r\n")
                    assert data == (
                        b"STORED\r\n"
                        + f"VALUE {key} 0 {len(value)}\r\n".encode()
                        + value
                        + b"\r\nEND\r\n"
                    )
                finally:
                    writer.close()

            try:
                await asyncio.gather(*(worker(i) for i in range(8)))
            finally:
                await server.close()

        asyncio.run(scenario())

    def test_tcp_client_helper_round_trip(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            client = TCPClient()
            await client.connect(host, port)
            try:
                stored = await client.request(
                    b"set k 0 0 2\r\nhi\r\n", "set"
                )
                assert stored == b"STORED\r\n"
                # Overlapped (pipelined) requests resolve in order.
                first, second = await asyncio.gather(
                    client.request(b"get k\r\n", "get"),
                    client.request(b"stats\r\n", "stats"),
                )
                assert first == b"VALUE k 0 2\r\nhi\r\nEND\r\n"
                assert second.startswith(b"STAT ")
                assert second.endswith(b"END\r\n")
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())


class TestOverload:
    def test_shed_answers_busy_when_queue_full(self):
        async def scenario():
            # No worker started: the queue cannot drain, so the bound
            # is hit deterministically.
            server = make_server(backpressure="shed", queue_depth=2)
            futures = [
                await server.submit(Command(op="get", keys=[f"k{i}"]))
                for i in range(5)
            ]
            busy = [f for f in futures if f.done() and f.result() == BUSY]
            assert len(busy) == 3
            assert server.metrics.shed == 3
            # Draining frees the slots: queued requests complete, and
            # new submissions are accepted again.
            await server.start()
            done = await asyncio.gather(*futures)
            assert sum(1 for r in done if r == BUSY) == 3
            assert sum(1 for r in done if r.endswith(b"END\r\n")) == 2
            retry = await server.submit(Command(op="get", keys=["again"]))
            assert (await retry).endswith(b"END\r\n")
            assert server.metrics.shed == 3
            await server.close()

        asyncio.run(scenario())

    def test_queue_policy_blocks_instead_of_shedding(self):
        async def scenario():
            server = make_server(backpressure="queue", queue_depth=1)
            first = await server.submit(Command(op="get", keys=["a"]))
            blocked = asyncio.ensure_future(
                server.submit(Command(op="get", keys=["b"]))
            )
            await asyncio.sleep(0)
            assert not blocked.done()  # waiting for a slot, not shed
            await server.start()
            second = await blocked
            results = await asyncio.gather(first, second)
            assert all(r.endswith(b"END\r\n") for r in results)
            assert server.metrics.shed == 0
            await server.close()

        asyncio.run(scenario())

    def test_abrupt_disconnect_mid_pipeline_leaks_nothing(self):
        async def scenario():
            server = make_server(backpressure="shed", queue_depth=64)
            host, port = await server.start_tcp()
            # Blast a pipeline and vanish without reading a byte.
            reader, writer = await raw_client(host, port)
            payload = b"".join(
                b"set d%d 0 0 4\r\nDATA\r\n" % i for i in range(40)
            )
            writer.write(payload)
            await writer.drain()
            writer.transport.abort()
            # The already-queued commands still drain through the
            # worker; afterwards every slot is free again.
            await server._queue.join()
            assert server._queue.qsize() == 0
            # And the server still serves new connections, full-depth.
            reader2, writer2 = await raw_client(host, port)
            stored = await send_and_read(
                writer2, reader2, b"set ok 0 0 2\r\nok\r\n", b"\r\n"
            )
            assert stored == b"STORED\r\n"
            writer2.close()
            await server.close()

        asyncio.run(scenario())

    def test_internal_failure_answers_server_error(self):
        async def scenario():
            server = make_server()

            def explode(commands):
                raise RuntimeError("boom")

            server.service.execute = explode
            await server.start()
            future = await server.submit(Command(op="get", keys=["k"]))
            assert (await future) == b"SERVER_ERROR internal error\r\n"
            await server.close()

        asyncio.run(scenario())


class TestMemoryTransport:
    def test_memory_client_matches_tcp_semantics(self):
        async def scenario():
            server = make_server()
            await server.start()
            client = MemoryClient(server)
            assert await client.request(
                b"set k 1 0 3\r\nabc\r\n"
            ) == b"STORED\r\n"
            assert await client.request(b"get k\r\n") == (
                b"VALUE k 1 3\r\nabc\r\nEND\r\n"
            )
            assert await client.request(b"frobnicate\r\n") == b"ERROR\r\n"
            # Pipelined: one write, all responses concatenated in order.
            out = await client.request(b"delete k\r\nget k\r\n")
            assert out == b"DELETED\r\nEND\r\n"
            # noreply suppressed here too.
            out = await client.request(
                b"set q 0 0 1 noreply\r\nZ\r\nget q\r\n"
            )
            assert out == b"VALUE q 0 1\r\nZ\r\nEND\r\n"
            await server.close()

        asyncio.run(scenario())

    def test_batches_span_connections(self):
        async def scenario():
            server = make_server(max_batch=64)
            await server.start()
            clients = [MemoryClient(server) for _ in range(4)]
            await asyncio.gather(
                *(
                    client.request(b"set k%d 0 0 1\r\nV\r\n" % i)
                    for i, client in enumerate(clients)
                )
            )
            assert server.metrics.requests == 4
            # At least one worker wake batched multiple connections'
            # commands into a single execute call.
            assert server.metrics.batches <= 4
            await server.close()

        asyncio.run(scenario())


class TestConfigValidation:
    def test_bad_backpressure_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="backpressure"):
            make_server(backpressure="drop")
        with pytest.raises(ConfigurationError, match="queue_depth"):
            make_server(queue_depth=0)
        with pytest.raises(ConfigurationError, match="max_batch"):
            make_server(max_batch=0)

    def test_degradation_knobs_validated(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="queue_deadline_s"):
            make_server(queue_deadline_s=-0.1)
        with pytest.raises(ConfigurationError, match="max_inflight"):
            make_server(max_inflight=-1)
        with pytest.raises(ConfigurationError, match="connect_timeout"):
            TCPClient(connect_timeout=0)
        with pytest.raises(ConfigurationError, match="request_timeout"):
            TCPClient(request_timeout=-1.0)


class TestClientHardening:
    def test_server_death_mid_pipeline_raises_connection_error(self):
        """Kill the server between pipelined requests: in-flight
        requests fail with ConnectionError (not a hang), and so does
        every later request on the dead client."""

        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            client = TCPClient()
            await client.connect(host, port)
            assert await client.request(
                b"set k 0 0 2\r\nhi\r\n", "set"
            ) == b"STORED\r\n"
            # Pipeline two requests, then yank the server before the
            # responses can be written.
            first = asyncio.ensure_future(client.request(b"get k\r\n", "get"))
            second = asyncio.ensure_future(
                client.request(b"get k\r\n", "get")
            )
            await asyncio.sleep(0)
            await server.close()
            with pytest.raises(ConnectionError):
                await first
            with pytest.raises(ConnectionError):
                await second
            with pytest.raises(ConnectionError):
                await client.request(b"get k\r\n", "get")
            await client.close()

        asyncio.run(scenario())

    def test_connect_timeout_raises_connection_error(self, monkeypatch):
        async def hang_forever(host, port):
            await asyncio.sleep(3600)

        async def scenario():
            monkeypatch.setattr(asyncio, "open_connection", hang_forever)
            client = TCPClient(connect_timeout=0.05)
            with pytest.raises(ConnectionError, match="timed out"):
                await client.connect("127.0.0.1", 1)

        asyncio.run(scenario())

    def test_request_timeout_raises_connection_error(self):
        async def scenario():
            # Listener only, no worker: commands queue but nothing ever
            # answers, so the response deadline must trip.
            server = make_server()
            server._worker = asyncio.get_running_loop().create_task(
                asyncio.sleep(3600)
            )
            host, port = await server.start_tcp()
            client = TCPClient(request_timeout=0.05)
            await client.connect(host, port)
            with pytest.raises(ConnectionError, match="no response"):
                await client.request(b"get k\r\n", "get")
            await client.close()
            # Unstick the queued job so teardown's write loop can exit.
            while True:
                try:
                    job = server._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                job.future.set_result(BUSY)
                server._queue.task_done()
            await server.close()

        asyncio.run(scenario())


class TestGracefulShutdown:
    def test_shutdown_answers_queued_pipeline_before_closing(self):
        """shutdown() drains the queue and flushes connection writers:
        a client with pipelined requests in flight gets every response,
        then EOF."""

        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            reader, writer = await raw_client(host, port)
            writer.write(
                b"set a 0 0 1\r\nA\r\n" b"get a\r\n" b"set b 0 0 1\r\nB\r\n"
            )
            await writer.drain()
            await asyncio.sleep(0.01)  # let the reader ingest it all
            await server.shutdown()
            data = await reader.read()
            assert data == (
                b"STORED\r\nVALUE a 0 1\r\nA\r\nEND\r\nSTORED\r\n"
            )
            writer.close()

        asyncio.run(scenario())

    def test_shutdown_stops_accepting_new_connections(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            await server.shutdown()
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.wait_for(raw_client(host, port), 0.5)

        asyncio.run(scenario())

    def test_shutdown_is_idempotent_with_close(self):
        async def scenario():
            server = make_server()
            await server.start()
            await server.shutdown()
            await server.close()

        asyncio.run(scenario())


class TestGracefulDegradation:
    def test_queue_deadline_sheds_expired_commands(self):
        async def scenario():
            # No worker yet: jobs age in the queue, then a worker with a
            # tiny deadline sheds them all as BUSY.
            server = make_server(queue_deadline_s=0.01)
            futures = [
                await server.submit(Command(op="get", keys=[f"k{i}"]))
                for i in range(4)
            ]
            await asyncio.sleep(0.05)
            await server.start()
            responses = await asyncio.gather(*futures)
            assert all(r == BUSY for r in responses)
            assert server.metrics.shed_expired == 4
            assert server.metrics.shed == 4
            # Fresh commands execute normally.
            fresh = await server.submit(Command(op="get", keys=["new"]))
            assert (await fresh).endswith(b"END\r\n")
            assert server.metrics.shed_expired == 4
            await server.close()

        asyncio.run(scenario())

    def test_max_inflight_caps_per_connection(self):
        async def scenario():
            server = make_server(max_inflight=2)
            owner = object()
            futures = [
                await server.submit(
                    Command(op="get", keys=[f"k{i}"]), owner=owner
                )
                for i in range(5)
            ]
            busy = [f for f in futures if f.done() and f.result() == BUSY]
            assert len(busy) == 3
            assert server.metrics.shed_inflight == 3
            # Another connection has its own budget.
            other = await server.submit(
                Command(op="get", keys=["other"]), owner=object()
            )
            assert not other.done()
            await server.start()
            await asyncio.gather(*futures, other)
            # Completion released the slots: the same owner can submit
            # again.
            retry = await server.submit(
                Command(op="get", keys=["again"]), owner=owner
            )
            assert (await retry).endswith(b"END\r\n")
            await server.close()

        asyncio.run(scenario())


class TestStatsWire:
    def test_stats_surfaces_server_metrics_over_tcp(self):
        async def scenario():
            server = make_server(backpressure="shed", queue_depth=1)
            # Shed a couple of requests first so the counters are warm
            # (no worker yet: the second and third submissions shed).
            for i in range(3):
                await server.submit(Command(op="get", keys=[f"k{i}"]))
            host, port = await server.start_tcp()
            reader, writer = await raw_client(host, port)
            try:
                data = await send_and_read(
                    writer, reader, b"stats\r\n", b"END\r\n"
                )
                stats = {
                    line.split()[1]: line.split()[2]
                    for line in data.decode().splitlines()
                    if line.startswith("STAT ")
                }
                assert stats["server_shed"] == "2"
                assert int(stats["server_requests"]) >= 3
                assert "server_shed_expired" in stats
                assert "server_shed_inflight" in stats
                assert int(stats["queue_depth_high_water"]) >= 1
                assert stats["live_shards"] == "2"
                assert "dead_requests" in stats
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_stats_round_trips_through_tcp_client_framing(self):
        async def scenario():
            server = make_server()
            host, port = await server.start_tcp()
            client = TCPClient()
            await client.connect(host, port)
            try:
                raw = await client.request(b"stats\r\n", "stats")
                assert raw.endswith(b"END\r\n")
                lines = raw.decode().splitlines()
                keys = [
                    line.split()[1]
                    for line in lines
                    if line.startswith("STAT ")
                ]
                assert "server_requests" in keys
                assert "queue_depth_high_water" in keys
                assert "cmd_get" in keys
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())
