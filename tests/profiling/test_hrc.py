"""Tests for hit-rate curves, hulls and cliff detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.profiling.hrc import HitRateCurve


def sigmoid_curve():
    """A synthetic curve with a clear cliff between 100 and 200."""
    sizes = [0, 50, 100, 150, 200, 300]
    rates = [0.0, 0.05, 0.08, 0.30, 0.90, 0.95]
    return HitRateCurve(sizes, rates, total_requests=1000)


class TestConstruction:
    def test_from_stack_distances(self):
        distances = [None, 1, 2, None, 1, 5]
        curve = HitRateCurve.from_stack_distances(distances)
        # hits at capacity 2: distances 1,2,1 -> 3/6
        assert curve.hit_rate(2) == pytest.approx(0.5)
        assert curve.hit_rate(5) == pytest.approx(4 / 6)
        assert curve.total_requests == 6

    def test_all_cold_stream(self):
        curve = HitRateCurve.from_stack_distances([None] * 10, max_size=50)
        assert curve.hit_rate(50) == 0.0

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            HitRateCurve.from_stack_distances([])

    def test_compulsory_misses_cap_the_curve(self):
        distances = [None] * 5 + [1.0] * 5
        curve = HitRateCurve.from_stack_distances(distances)
        assert curve.hit_rates[-1] == pytest.approx(0.5)

    def test_sizes_must_increase(self):
        with pytest.raises(ConfigurationError):
            HitRateCurve([0, 5, 5], [0, 0.1, 0.2], 10)

    def test_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            HitRateCurve([1, 5], [0.0, 0.5], 10)


class TestEvaluation:
    def test_interpolation_and_clamping(self):
        curve = sigmoid_curve()
        assert curve.hit_rate(125) == pytest.approx(0.19)
        assert curve.hit_rate(-5) == 0.0
        assert curve.hit_rate(10_000) == pytest.approx(0.95)

    def test_hits_scales_by_total(self):
        curve = sigmoid_curve()
        assert curve.hits(300) == pytest.approx(950)

    def test_gradient_positive_on_ramp(self):
        curve = sigmoid_curve()
        assert curve.gradient(150, window=10) > 0
        assert curve.gradient(150, window=10) > curve.gradient(
            250, window=10
        )


class TestHullAndCliffs:
    def test_hull_dominates_curve(self):
        curve = sigmoid_curve()
        hull = curve.concave_hull()
        for size in np.linspace(0, 300, 50):
            assert hull.hit_rate(size) >= curve.hit_rate(size) - 1e-9

    def test_cliff_detected(self):
        curve = sigmoid_curve()
        cliffs = curve.cliffs(tolerance=0.02)
        assert len(cliffs) == 1
        start, end = cliffs[0]
        assert start <= 100
        assert end >= 150

    def test_is_concave(self):
        concave = HitRateCurve([0, 10, 20, 30], [0, 0.5, 0.8, 0.9], 100)
        assert concave.is_concave()
        assert not sigmoid_curve().is_concave(tolerance=0.02)

    def test_anchors_for_size_inside_cliff(self):
        curve = sigmoid_curve()
        anchors = curve.hull_anchors_for(150, tolerance=0.02)
        assert anchors is not None
        left, right = anchors
        assert left < 150 < right

    def test_no_anchors_outside_cliff(self):
        curve = sigmoid_curve()
        assert curve.hull_anchors_for(290, tolerance=0.02) is None


class TestTransforms:
    def test_scale_sizes(self):
        curve = sigmoid_curve().scale_sizes(256, unit="bytes")
        assert curve.hit_rate(200 * 256) == pytest.approx(0.90)
        assert curve.unit == "bytes"

    def test_scale_requires_positive_factor(self):
        with pytest.raises(ConfigurationError):
            sigmoid_curve().scale_sizes(0)

    def test_resample_preserves_endpoints(self):
        curve = sigmoid_curve().resample(7)
        assert curve.sizes[0] == 0.0
        assert curve.sizes[-1] == 300.0
        assert len(curve.sizes) == 7

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(1, 500, allow_nan=False), min_size=2, max_size=100
        )
    )
    def test_curve_from_distances_is_monotone(self, raw):
        curve = HitRateCurve.from_stack_distances(raw)
        assert np.all(np.diff(curve.hit_rates) >= -1e-12)
        assert np.all(curve.hit_rates <= 1.0 + 1e-12)
