"""Tests for the Mimir bucket estimator."""


import pytest

from repro.common.errors import ConfigurationError
from repro.profiling.mimir import MimirProfiler
from repro.profiling.stack_distance import StackDistanceProfiler


class TestMimirBasics:
    def test_cold_access_is_none(self):
        profiler = MimirProfiler()
        assert profiler.record("a") is None

    def test_rereference_estimates_positive(self):
        profiler = MimirProfiler()
        profiler.record("a")
        profiler.record("b")
        estimate = profiler.record("a")
        assert estimate is not None and estimate > 0

    def test_needs_two_buckets(self):
        with pytest.raises(ConfigurationError):
            MimirProfiler(num_buckets=1)

    def test_max_tracked_bound(self):
        profiler = MimirProfiler(max_tracked=50)
        for i in range(500):
            profiler.record(f"k{i}")
        assert profiler.tracked <= 50

    def test_forgotten_key_looks_cold(self):
        profiler = MimirProfiler(max_tracked=10)
        profiler.record("victim")
        for i in range(100):
            profiler.record(f"filler{i}")
        assert profiler.record("victim") is None


class TestMimirAccuracy:
    def test_rough_agreement_with_exact(self, rng):
        """The bucket estimate should land in the right ballpark: mean
        relative error bounded, ordering preserved on average. (The
        paper relies on it being *imperfect*, so the bound is loose.)"""
        keys = [f"k{rng.randrange(200)}" for _ in range(20000)]
        exact = StackDistanceProfiler().record_all(keys)
        estimated = MimirProfiler(num_buckets=100).record_all(keys)
        pairs = [
            (e, m)
            for e, m in zip(exact, estimated)
            if e is not None and m is not None and e > 20
        ]
        assert pairs, "stream produced no warm re-references"
        ratio = sum(m / e for e, m in pairs) / len(pairs)
        assert 0.4 < ratio < 2.5

    def test_estimates_monotone_in_buckets(self, rng):
        """More buckets -> finer resolution: estimates take more
        distinct values."""
        keys = [f"k{rng.randrange(100)}" for _ in range(5000)]
        coarse = MimirProfiler(num_buckets=4).record_all(keys)
        fine = MimirProfiler(num_buckets=100).record_all(keys)
        distinct_coarse = len({d for d in coarse if d is not None})
        distinct_fine = len({d for d in fine if d is not None})
        assert distinct_fine >= distinct_coarse
