"""Tests for exact stack distances: the Fenwick profiler against the
naive oracle, and the Mattson inclusion property against a real LRU."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.policies import make_policy
from repro.profiling.stack_distance import (
    StackDistanceProfiler,
    naive_stack_distances,
)


class TestNaiveOracle:
    def test_cold_accesses_are_none(self):
        assert naive_stack_distances(["a", "b"]) == [None, None]

    def test_immediate_rereference_is_one(self):
        assert naive_stack_distances(["a", "a"]) == [None, 1]

    def test_textbook_sequence(self):
        # a b c b a: b has 1 distinct key since (c) -> rank 2;
        # a has b,c since -> rank 3.
        assert naive_stack_distances(list("abcba")) == [
            None, None, None, 2, 3,
        ]


class TestFenwickProfiler:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 30), max_size=400))
    def test_matches_naive(self, key_ids):
        keys = [f"k{i}" for i in key_ids]
        expected = naive_stack_distances(keys)
        profiler = StackDistanceProfiler()
        got = profiler.record_all(keys)
        for e, g in zip(expected, got):
            if e is None:
                assert g is None
            else:
                assert g == pytest.approx(e)

    def test_grows_past_initial_capacity(self):
        profiler = StackDistanceProfiler()
        keys = [f"k{i % 7}" for i in range(5000)]
        profiler.record_all(keys)
        assert profiler.unique_keys == 7
        # steady state distance of a 7-key round robin is 7
        assert profiler.distances[-1] == pytest.approx(7)

    def test_inclusion_property_vs_lru(self, rng):
        """Mattson: LRU of capacity C hits iff stack distance <= C."""
        keys = [f"k{rng.randrange(60)}" for _ in range(3000)]
        distances = StackDistanceProfiler().record_all(keys)
        for capacity in (1, 5, 17, 40, 80):
            policy = make_policy("lru", capacity)
            hits = 0
            for key in keys:
                if policy.access(key):
                    hits += 1
                else:
                    policy.insert(key, 1)
            expected = sum(
                1 for d in distances if d is not None and d <= capacity
            )
            assert hits == expected, capacity

    def test_weighted_distances(self):
        """Byte-weighted mode: distance counts bytes of distinct keys."""
        profiler = StackDistanceProfiler()
        profiler.record("a", weight=100)
        profiler.record("b", weight=50)
        distance = profiler.record("a", weight=100)
        # b's 50 bytes + a's own 100 bytes.
        assert distance == pytest.approx(150)

    def test_weighted_inclusion_vs_byte_lru(self, rng):
        """Byte distances predict byte-capacity LRU hits (stable sizes)."""
        sizes = {f"k{i}": 20 + (i * 13) % 90 for i in range(40)}
        keys = [f"k{rng.randrange(40)}" for _ in range(2500)]
        profiler = StackDistanceProfiler()
        distances = [profiler.record(k, weight=sizes[k]) for k in keys]
        for capacity in (200, 800, 2000):
            policy = make_policy("lru", capacity)
            hits = 0
            for key in keys:
                if policy.access(key):
                    hits += 1
                else:
                    policy.insert(key, sizes[key])
            expected = sum(
                1 for d in distances if d is not None and d <= capacity
            )
            assert hits == expected, capacity
