"""Tests for the cost model and micro-benchmark drivers."""

import pytest

from repro.cache.stats import OpCounter
from repro.common.errors import ConfigurationError
from repro.perfmodel.costmodel import CostModel, overhead_percent
from repro.perfmodel.microbench import (
    measure_latency_overhead,
    measure_throughput_slowdown,
)


class TestCostModel:
    def test_mechanism_cost_linear_in_ops(self):
        model = CostModel()
        ops = OpCounter(hash_lookups=10)
        assert model.mechanism_cost(ops) == pytest.approx(
            10 * model.hash_lookup
        )

    def test_request_cost_mixes_bases(self):
        model = CostModel()
        cost = model.request_cost(OpCounter(), gets=1, sets=1)
        assert cost == pytest.approx((model.base_get + model.base_set) / 2)

    def test_zero_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().request_cost(OpCounter(), 0, 0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(base_get=-1)

    def test_throughput_inverse_of_cost(self):
        model = CostModel()
        ops = OpCounter()
        assert model.throughput(ops, 10, 0) == pytest.approx(
            1e6 / model.base_get
        )


class TestOverheadPercent:
    def test_positive_overhead(self):
        assert overhead_percent(10.0, 11.0) == pytest.approx(10.0)

    def test_clamped_at_zero(self):
        assert overhead_percent(10.0, 9.0) == 0.0

    def test_invalid_baseline(self):
        with pytest.raises(ConfigurationError):
            overhead_percent(0.0, 1.0)


class TestMicroBench:
    def test_latency_overheads_small_and_ordered(self):
        """Shape of Table 6: overheads exist, stay in the low percent
        range, and the combined algorithm costs at least as much as
        hill climbing alone."""
        overheads = measure_latency_overhead(num_requests=4000, seed=1)
        for algorithm in ("hill-climbing", "cliffhanger"):
            for op in ("get", "set"):
                assert 0.0 <= overheads[algorithm][op] < 25.0
        assert (
            overheads["cliffhanger"]["get"]
            >= overheads["hill-climbing"]["get"] - 1e-9
        )

    def test_hit_path_cheaper_than_miss_path(self):
        miss = measure_latency_overhead(
            num_requests=4000, all_miss=True, seed=1
        )
        hit = measure_latency_overhead(
            num_requests=4000, all_miss=False, seed=1
        )
        assert (
            hit["hill-climbing"]["get"] <= miss["hill-climbing"]["get"] + 1e-9
        )

    def test_throughput_slowdown_rows(self):
        rows = measure_throughput_slowdown(
            mixes=((0.967, 0.033), (0.1, 0.9)), num_requests=4000, seed=1
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["slowdown_pct"] < 30.0
        # More SETs -> more allocation/shadow work -> more slowdown.
        assert rows[1]["slowdown_pct"] >= rows[0]["slowdown_pct"] - 0.5
