"""Property tests: compiled traces are a lossless, replay-equivalent
representation of request streams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.server import CacheServer
from repro.cache.log_structured import GlobalLRUEngine
from repro.cache.slabs import SlabGeometry
from repro.common.errors import TraceFormatError
from repro.core.engine import CliffhangerEngine
from repro.workloads.compiled import CompiledTrace, TraceCache
from repro.workloads.trace import Request

GEOMETRY = SlabGeometry.default()

# Value sizes that always fit the largest slab class, leaving room for
# key bytes and the per-item overhead.
_MAX_VALUE = GEOMETRY.chunk_sizes[-1] - 256


@st.composite
def traces(draw, max_requests: int = 120):
    """Generated mixed-op, multi-app request streams (time-ordered)."""
    num_apps = draw(st.integers(min_value=1, max_value=3))
    apps = [f"app{i}" for i in range(num_apps)]
    count = draw(st.integers(min_value=1, max_value=max_requests))
    # Per-key deterministic sizes, like every real generator in the repo.
    sizes = {}
    requests = []
    for i in range(count):
        app = draw(st.sampled_from(apps))
        key_index = draw(st.integers(min_value=0, max_value=30))
        key = f"{app}:k{key_index}"
        if key not in sizes:
            sizes[key] = draw(st.integers(min_value=1, max_value=_MAX_VALUE))
        op = draw(
            st.sampled_from(["get", "get", "get", "set", "delete"])
        )
        requests.append(
            Request(
                time=float(i),
                app=app,
                key=key,
                op=op,
                value_size=sizes[key],
            )
        )
    return requests


def _counter_state(counter):
    return (
        counter.get_hits,
        counter.get_misses,
        counter.sets,
        counter.shadow_hits,
        counter.evictions,
    )


def _registry_state(stats):
    return (
        _counter_state(stats.total),
        sorted(
            (app, _counter_state(c)) for app, c in stats.by_app.items()
        ),
        sorted(
            ((app, -1 if slab is None else slab), _counter_state(c))
            for (app, slab), c in stats.by_app_class.items()
        ),
    )


def _server_for(requests, make_engine):
    server = CacheServer(GEOMETRY)
    for app in sorted({r.app for r in requests}):
        server.add_app(make_engine(app))
    return server


ENGINE_FACTORIES = {
    "global-lru": lambda app: GlobalLRUEngine(app, 64 << 10, GEOMETRY),
    "cliffhanger": lambda app: CliffhangerEngine(
        app,
        64 << 10,
        GEOMETRY,
        seed=0,
        probe_items=12,
        min_cliff_items=20,
    ),
}


@settings(max_examples=40, deadline=None)
@given(traces())
def test_compile_roundtrip_preserves_requests(requests):
    compiled = CompiledTrace.compile(requests, GEOMETRY)
    assert len(compiled) == len(requests)
    assert list(compiled.iter_requests()) == requests


@settings(max_examples=25, deadline=None)
@given(traces())
@pytest.mark.parametrize("engine_kind", sorted(ENGINE_FACTORIES))
def test_compiled_replay_equals_object_replay(engine_kind, requests):
    make = ENGINE_FACTORIES[engine_kind]
    compiled = CompiledTrace.compile(requests, GEOMETRY)

    object_server = _server_for(requests, make)
    object_server.replay(iter(requests))

    fast_server = _server_for(requests, make)
    fast_server.replay_compiled(compiled)

    assert _registry_state(fast_server.stats) == _registry_state(
        object_server.stats
    )


@settings(max_examples=25, deadline=None)
@given(traces())
@pytest.mark.parametrize("engine_kind", sorted(ENGINE_FACTORIES))
def test_reexpanded_replay_equals_object_replay(engine_kind, requests):
    """compile -> iter_requests -> replay matches replaying the original."""
    make = ENGINE_FACTORIES[engine_kind]
    compiled = CompiledTrace.compile(requests, GEOMETRY)

    object_server = _server_for(requests, make)
    object_server.replay(iter(requests))

    expanded_server = _server_for(requests, make)
    expanded_server.replay(compiled.iter_requests())

    assert _registry_state(expanded_server.stats) == _registry_state(
        object_server.stats
    )


@settings(max_examples=20, deadline=None)
@given(requests=traces(max_requests=60))
def test_save_load_roundtrip(requests, tmp_path_factory):
    compiled = CompiledTrace.compile(requests, GEOMETRY)
    path = tmp_path_factory.mktemp("traces") / "trace.npz"
    compiled.save(path)
    loaded = CompiledTrace.load(path)
    assert list(loaded.iter_requests()) == requests
    assert loaded.slab_classes == compiled.slab_classes
    assert loaded.chunk_bytes == compiled.chunk_bytes


def test_select_apps_matches_filtering():
    requests = [
        Request(time=float(i), app=f"app{i % 3}", key=f"app{i % 3}:k{i % 7}",
                op="get", value_size=100)
        for i in range(60)
    ]
    compiled = CompiledTrace.compile(requests, GEOMETRY)
    subset = compiled.select_apps(["app1"])
    expected = [r for r in requests if r.app == "app1"]
    assert list(subset.iter_requests()) == expected


def test_slice_and_with_op():
    requests = [
        Request(time=float(i), app="a", key=f"a:k{i}", op="get",
                value_size=50)
        for i in range(10)
    ]
    compiled = CompiledTrace.compile(requests, GEOMETRY)
    assert len(compiled.slice(0, 4)) == 4
    assert len(compiled.slice(4)) == 6
    sets = compiled.with_op("set")
    assert set(sets.op_codes) == {1}
    assert sets.slab_classes == compiled.slab_classes


def test_compile_validates_once():
    bad_op = [Request.__new__(Request)]
    object.__setattr__(bad_op[0], "time", 0.0)
    object.__setattr__(bad_op[0], "app", "a")
    object.__setattr__(bad_op[0], "key", "a:k")
    object.__setattr__(bad_op[0], "op", "frobnicate")
    object.__setattr__(bad_op[0], "value_size", 10)
    object.__setattr__(bad_op[0], "key_size", 3)
    with pytest.raises(TraceFormatError):
        CompiledTrace.compile(bad_op, GEOMETRY)


def test_trace_cache_memory_and_disk(tmp_path):
    calls = []

    def factory():
        calls.append(1)
        return [
            Request(time=0.0, app="a", key="a:k", op="get", value_size=10)
        ]

    cache = TraceCache(directory=tmp_path, memory_entries=2)
    first = cache.get_or_compile("t1", factory)
    again = cache.get_or_compile("t1", factory)
    assert first is again and len(calls) == 1

    # A fresh cache instance must hit the disk copy, not the factory.
    other = TraceCache(directory=tmp_path)
    loaded = cache_hit = other.get_or_compile("t1", factory)
    assert len(calls) == 1
    assert list(cache_hit.iter_requests()) == list(first.iter_requests())
    assert loaded.keys == first.keys
