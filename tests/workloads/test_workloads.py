"""Tests for the workload generators, size models and trace I/O."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.profiling.hrc import HitRateCurve
from repro.profiling.stack_distance import StackDistanceProfiler
from repro.workloads.facebook import (
    FACEBOOK_GET_FRACTION,
    FacebookETCStream,
    UniqueKeyStream,
)
from repro.workloads.generators import (
    Component,
    MixtureStream,
    Phase,
    ReuseDistanceStream,
    ScanStream,
    ZipfStream,
)
from repro.workloads.sizes import (
    FixedSize,
    GeneralizedParetoSize,
    LogNormalSize,
    MixtureSize,
    UniformSize,
)
from repro.workloads.trace import (
    Request,
    load_jsonl,
    merge_by_time,
    save_jsonl,
    take,
)
from repro.workloads.zipf import ZipfSampler


class TestZipfSampler:
    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(1000, alpha=1.0, seed=1)
        ranks = sampler.sample(20000)
        counts = np.bincount(ranks, minlength=1000)
        assert counts[0] == counts.max()

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0, seed=1)
        ranks = sampler.sample(50000)
        counts = np.bincount(ranks, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(50, alpha=1.2)
        total = sum(sampler.probability(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, 1.0, seed=7).sample(100)
        b = ZipfSampler(100, 1.0, seed=7).sample(100)
        assert np.array_equal(a, b)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, -1.0)


class TestSizeModels:
    @pytest.mark.parametrize(
        "model",
        [
            FixedSize(100),
            UniformSize(10, 500),
            LogNormalSize(200),
            GeneralizedParetoSize(),
            MixtureSize([(0.5, FixedSize(50)), (0.5, FixedSize(5000))]),
        ],
    )
    def test_deterministic_per_key(self, model):
        for key in ("a", "user:17", "x" * 40):
            assert model.size_of(key) == model.size_of(key)
            assert model.size_of(key) >= 1

    def test_uniform_within_bounds(self):
        model = UniformSize(10, 20)
        sizes = {model.size_of(f"k{i}") for i in range(500)}
        assert all(10 <= s <= 20 for s in sizes)

    def test_pareto_is_heavy_tailed(self):
        model = GeneralizedParetoSize()
        sizes = [model.size_of(f"k{i}") for i in range(20000)]
        mean = sum(sizes) / len(sizes)
        assert np.median(sizes) < mean  # right-skewed

    def test_mixture_assigns_both_components(self):
        model = MixtureSize([(0.5, FixedSize(50)), (0.5, FixedSize(5000))])
        sizes = {model.size_of(f"k{i}") for i in range(200)}
        assert sizes == {50, 5000}

    def test_invalid_models(self):
        with pytest.raises(ConfigurationError):
            FixedSize(0)
        with pytest.raises(ConfigurationError):
            UniformSize(10, 5)
        with pytest.raises(ConfigurationError):
            MixtureSize([])


class TestStreams:
    def test_zipf_stream_shape(self):
        stream = ZipfStream("app", 100, 1.0, FixedSize(64), seed=1)
        requests = list(stream.generate(500, duration=100.0))
        assert len(requests) == 500
        assert all(r.op == "get" for r in requests)
        times = [r.time for r in requests]
        assert times == sorted(times)
        assert times[-1] < 100.0

    def test_zipf_stream_set_fraction(self):
        stream = ZipfStream(
            "app", 100, 1.0, FixedSize(64), set_fraction=0.5, seed=1
        )
        ops = [r.op for r in stream.generate(2000, 10.0)]
        sets = ops.count("set")
        assert 800 < sets < 1200

    def test_scan_stream_cycles(self):
        stream = ScanStream("app", 5, FixedSize(64))
        keys = [r.key for r in stream.generate(12, 10.0)]
        assert keys[0] == keys[5] == keys[10]

    def test_reuse_stream_produces_sigmoid_curve(self):
        stream = ReuseDistanceStream(
            "app", 300, 60, FixedSize(64), refs_per_key=9, seed=2
        )
        profiler = StackDistanceProfiler()
        for r in stream.generate(40000, 100.0):
            profiler.record(r.key)
        curve = HitRateCurve.from_stack_distances(profiler.distances)
        # plateau near refs/(refs+1)
        assert curve.hit_rates[-1] == pytest.approx(0.9, abs=0.05)
        # flat well below the mean, steep at it
        assert curve.hit_rate(100) < 0.05
        assert curve.cliffs(tolerance=0.02), "no cliff detected"

    def test_mixture_respects_phases(self):
        always = Component(
            ZipfStream("a", 10, 1.0, FixedSize(64), namespace="x", seed=1),
            weight=1.0,
        )
        burst = Component(
            ZipfStream("a", 10, 1.0, FixedSize(64), namespace="y", seed=2),
            weight=0.02,
            phases=(Phase(0.5, 1.0, 100.0),),
        )
        stream = MixtureStream("a", [always, burst], seed=3)
        requests = list(stream.generate(2000, 100.0))
        first_half = [r for r in requests[:1000] if ":y:" in r.key]
        second_half = [r for r in requests[1000:] if ":y:" in r.key]
        assert len(second_half) > 5 * max(1, len(first_half))

    def test_phase_validation(self):
        with pytest.raises(ConfigurationError):
            Phase(0.8, 0.2, 1.0)


class TestFacebookStreams:
    def test_etc_mix(self):
        stream = FacebookETCStream(num_keys=1000, seed=1)
        ops = [r.op for r in stream.generate(5000, 10.0)]
        get_fraction = ops.count("get") / len(ops)
        assert get_fraction == pytest.approx(FACEBOOK_GET_FRACTION, abs=0.02)

    def test_unique_keys_always_miss(self):
        stream = UniqueKeyStream(seed=1)
        keys = [r.key for r in stream.generate(1000, 10.0)]
        assert len(set(keys)) == 1000

    def test_etc_key_sizes_in_range(self):
        stream = FacebookETCStream(num_keys=100, seed=1)
        for r in take(stream.generate(200, 10.0), 200):
            assert 16 <= r.key_size <= 45


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        requests = [
            Request(0.0, "a", "k1", "get", 100),
            Request(1.0, "a", "k2", "set", 200, key_size=5),
        ]
        path = tmp_path / "trace.jsonl"
        assert save_jsonl(requests, path) == 2
        loaded = list(load_jsonl(path))
        assert loaded == requests

    def test_bad_record_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"nope": 1}\n')
        with pytest.raises(TraceFormatError, match="bad.jsonl:1"):
            list(load_jsonl(path))

    def test_invalid_op_rejected(self):
        with pytest.raises(TraceFormatError):
            Request(0.0, "a", "k", "frobnicate", 10)

    def test_merge_by_time(self):
        a = [Request(t, "a", f"a{t}", "get", 1) for t in (0.0, 2.0, 4.0)]
        b = [Request(t, "b", f"b{t}", "get", 1) for t in (1.0, 3.0)]
        merged = list(merge_by_time([a, b]))
        assert [r.time for r in merged] == [0.0, 1.0, 2.0, 3.0, 4.0]
