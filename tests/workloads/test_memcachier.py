"""Tests for the synthetic Memcachier trace."""

import itertools

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.common import classify
from repro.workloads.memcachier import (
    APP_SPECS,
    build_memcachier_trace,
    value_size_for_class,
    zipf_cache_for_hit_rate,
)


class TestHelpers:
    def test_value_size_lands_in_class(self):
        from repro.cache.item import CacheItem
        from repro.cache.slabs import SlabGeometry

        geometry = SlabGeometry.default()
        for class_index in range(1, 12):
            value = value_size_for_class(class_index)
            item = CacheItem(key="app00:z:12345", value_size=value)
            assert geometry.class_for_size(item.total_size) == class_index

    def test_zipf_cache_monotone_in_target(self):
        small = zipf_cache_for_hit_rate(10000, 1.0, 0.5)
        large = zipf_cache_for_hit_rate(10000, 1.0, 0.9)
        assert small < large <= 10000

    def test_zipf_cache_invalid_target(self):
        with pytest.raises(ConfigurationError):
            zipf_cache_for_hit_rate(100, 1.0, 0.0)


class TestSpecs:
    def test_twenty_apps(self):
        assert len(APP_SPECS) == 20
        assert [spec.index for spec in APP_SPECS] == list(range(1, 21))

    def test_cliff_apps_match_paper_annotation(self):
        starred = {spec.index for spec in APP_SPECS if spec.has_cliff}
        assert starred == {1, 7, 10, 11, 18, 19}


class TestBuild:
    def test_subset_selection(self):
        trace = build_memcachier_trace(scale=0.01, apps=[3, 5])
        assert trace.app_names == ["app03", "app05"]

    def test_unknown_subset_rejected(self):
        with pytest.raises(ConfigurationError):
            build_memcachier_trace(scale=0.01, apps=[99])

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            build_memcachier_trace(scale=0)

    def test_requests_are_time_ordered_and_complete(self):
        trace = build_memcachier_trace(scale=0.01, apps=[3, 4, 5])
        requests = list(trace.requests())
        assert len(requests) == trace.total_requests
        times = [r.time for r in requests]
        assert times == sorted(times)

    def test_regenerable(self):
        trace = build_memcachier_trace(scale=0.01, apps=[3])
        first = [r.key for r in itertools.islice(trace.requests(), 200)]
        second = [r.key for r in itertools.islice(trace.requests(), 200)]
        assert first == second

    def test_deterministic_across_builds(self):
        a = build_memcachier_trace(scale=0.01, apps=[4], seed=5)
        b = build_memcachier_trace(scale=0.01, apps=[4], seed=5)
        keys_a = [r.key for r in itertools.islice(a.requests(), 300)]
        keys_b = [r.key for r in itertools.islice(b.requests(), 300)]
        assert keys_a == keys_b

    def test_app_structure_matches_design(self):
        """Apps with documented multi-class structure really produce
        requests in several slab classes."""
        trace = build_memcachier_trace(scale=0.02, apps=[6])
        classes = {
            classify(r)
            for r in itertools.islice(trace.app_requests("app06"), 4000)
        }
        assert len(classes) >= 3

    def test_reservations_positive(self):
        trace = build_memcachier_trace(scale=0.01)
        assert all(v > 0 for v in trace.reservations.values())

    def test_min_requests_floor(self):
        trace = build_memcachier_trace(scale=0.001)
        for spec in APP_SPECS:
            assert (
                trace.requests_per_app[spec.name] >= spec.min_requests
            )
