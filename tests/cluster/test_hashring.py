"""Consistent-hash ring: determinism, balance, minimal key movement."""

import pytest

from repro.cluster import HashRing
from repro.common.errors import ConfigurationError

KEYS = [f"app:z:{i}" for i in range(4000)]


def test_deterministic_across_instances():
    a = HashRing(4, seed=7)
    b = HashRing(4, seed=7)
    assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]


def test_seed_changes_the_partition():
    a = HashRing(4, seed=0)
    b = HashRing(4, seed=1)
    moved = sum(a.shard_for(k) != b.shard_for(k) for k in KEYS)
    assert moved > len(KEYS) / 2  # independent partitions


def test_single_shard_owns_everything():
    ring = HashRing(1)
    assert {ring.shard_for(k) for k in KEYS} == {0}


def test_distribution_roughly_balanced():
    ring = HashRing(4, seed=0)
    counts = [0] * 4
    for key in KEYS:
        counts[ring.shard_for(key)] += 1
    mean = len(KEYS) / 4
    for count in counts:
        assert 0.5 * mean < count < 1.5 * mean


def test_adding_a_shard_moves_few_keys():
    """The consistent-hashing property: growing N -> N+1 only moves the
    keys captured by the new shard's tokens (~1/(N+1) of the space)."""
    before = HashRing(4, seed=0)
    after = HashRing(5, seed=0)
    moved = [k for k in KEYS if before.shard_for(k) != after.shard_for(k)]
    # ~1/5 expected; allow generous slack, but far below a full reshuffle.
    assert len(moved) < 0.35 * len(KEYS)
    # Every moved key went *to* the new shard, never between old shards.
    assert {after.shard_for(k) for k in moved} == {4}


def test_replica_sets_are_distinct_and_primary_first():
    ring = HashRing(5, seed=3)
    for key in KEYS[:200]:
        replicas = ring.shards_for(key, 3)
        assert len(replicas) == len(set(replicas)) == 3
        assert replicas[0] == ring.shard_for(key)


def test_replica_count_clamped_to_shards():
    ring = HashRing(2, seed=0)
    assert sorted(ring.shards_for("k", 10)) == [0, 1]


def test_bad_parameters_rejected():
    with pytest.raises(ConfigurationError):
        HashRing(0)
    with pytest.raises(ConfigurationError):
        HashRing(2, virtual_nodes=0)
    with pytest.raises(ConfigurationError):
        HashRing(2).shards_for("k", 0)
