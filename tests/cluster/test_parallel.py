"""Process-parallel replay: bit-exact parity with the serial oracle.

The parallel path's contract is absolute: fanning the per-shard replay
loops out to worker processes must change *nothing* -- per-shard
per-(app, class) counters, rebalance timelines, fault records, shard
load reports -- versus the serial partitioned replay, which itself is
pinned against the per-request oracle. These tests compare whole
serialized results (minus wall-clock timings and the worker-count knob
itself), under every replay mode the cluster has: static, rebalanced,
faulted (both policies), faulted + rebalanced, fork and spawn start
methods, and Hypothesis-driven random fault schedules.

Alongside parity: the knob's validation surface, the fresh-cluster
guard, sweep reachability, worker-failure propagation, shared-memory
hygiene (no ``/dev/shm`` leaks), and in-process unit coverage of the
worker-side helpers.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.server import CacheServer
from repro.cluster import ClusterConfig
from repro.cluster.cluster import scale_engine_budgets
from repro.cluster.parallel import (
    WorkerPool,
    apply_runs,
    build_shard_servers,
    partition_shards,
    replay_parallel,
    window_runs,
)
from repro.common.errors import ConfigurationError
from repro.sim import Scenario, load_workload, run_scenario
from repro.sim.runner import build_cluster

SEED = 0
SHARDS = 4

WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 2_000,
    "requests_per_app": 8_000,
}

BASE = Scenario(
    scheme="hill",
    workload="zipf",
    scale=0.1,
    seed=SEED,
    workload_params=dict(WORKLOAD_PARAMS),
    cluster={"shards": SHARDS, "virtual_nodes": 4},
)

TOTAL = sum(
    load_workload(
        "zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS
    ).requests_per_app.values()
)

REBALANCE = {"epoch_requests": 400, "policy": "shadow"}

FAULTS = {
    "events": [
        {"kind": "crash", "shard": 1, "at": 2_000},
        {"kind": "restart", "shard": 1, "at": 9_000},
        {"kind": "crash", "shard": 3, "at": 11_000},
    ],
}


def counters_snapshot(stats):
    return {
        key: (
            c.get_hits,
            c.get_misses,
            c.sets,
            c.shadow_hits,
            c.evictions,
            c.dead_requests,
        )
        for key, c in stats.by_app_class.items()
    }


def shard_snapshots(result):
    return [
        counters_snapshot(server.stats)
        for server in result.cluster.servers
    ]


def comparable(result):
    """A result's full serialized form minus wall-clock timings and the
    worker-count knob itself (the only knob allowed to differ)."""
    payload = result.to_dict()
    payload.pop("elapsed_seconds", None)
    payload.pop("requests_per_sec", None)
    payload["scenario"]["cluster"].pop("parallel_workers", None)
    return json.dumps(payload, sort_keys=True)


def with_workers(scenario, workers):
    return scenario.replace(
        cluster=dict(scenario.cluster, parallel_workers=workers)
    )


def shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - linux only
        return []
    return [
        name
        for name in os.listdir("/dev/shm")
        if name.startswith("repro-cols-")
    ]


def assert_parity(scenario, workers=2):
    serial = run_scenario(scenario, keep_server=True)
    parallel = run_scenario(
        with_workers(scenario, workers), keep_server=True
    )
    assert comparable(parallel) == comparable(serial)
    assert shard_snapshots(parallel) == shard_snapshots(serial)
    assert shm_entries() == []
    return serial, parallel


# ---------------------------------------------------------------------------
# Parity: every replay mode, whole serialized results
# ---------------------------------------------------------------------------


def test_static_parallel_identical_to_serial():
    assert_parity(BASE)


def test_rebalanced_parallel_identical_to_serial():
    serial, parallel = assert_parity(
        BASE.replace(rebalance=dict(REBALANCE)), workers=3
    )
    assert (
        parallel.cluster_report["rebalance"]
        == serial.cluster_report["rebalance"]
    )
    assert parallel.cluster_report["rebalance"]["transfers"] > 0


@pytest.mark.parametrize("policy", ["failover", "miss-through"])
def test_faulted_parallel_identical_to_serial(policy):
    serial, parallel = assert_parity(
        BASE.replace(faults=dict(FAULTS, policy=policy))
    )
    assert (
        parallel.cluster_report["faults"]
        == serial.cluster_report["faults"]
    )


@pytest.mark.parametrize("policy", ["failover", "miss-through"])
def test_faulted_rebalanced_parallel_identical_to_serial(policy):
    assert_parity(
        BASE.replace(
            faults=dict(FAULTS, policy=policy),
            rebalance=dict(REBALANCE),
        ),
        workers=3,
    )


def test_replicated_parallel_identical_to_serial():
    assert_parity(
        BASE.replace(cluster=dict(BASE.cluster, replication=2))
    )


def test_more_workers_than_shards_clamps():
    # parallel_workers=16 on 4 shards must still run (4 workers) and
    # still match byte for byte.
    assert_parity(BASE, workers=16)


def test_spawn_start_method_identical_to_fork():
    workload = load_workload("zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS)
    compiled = workload.compiled
    scenario = with_workers(BASE, 2)
    spawn_cluster = build_cluster(scenario, workload)
    stats = replay_parallel(spawn_cluster, compiled, start_method="spawn")
    serial_cluster = build_cluster(BASE, workload)
    serial_stats = serial_cluster.replay_compiled(compiled)
    assert counters_snapshot(stats) == counters_snapshot(serial_stats)
    assert [
        counters_snapshot(s.stats) for s in spawn_cluster.servers
    ] == [counters_snapshot(s.stats) for s in serial_cluster.servers]
    assert spawn_cluster.report() == serial_cluster.report()
    assert shm_entries() == []


@settings(max_examples=5, deadline=None)
@given(
    workers=st.integers(min_value=2, max_value=5),
    crash_at=st.integers(min_value=1, max_value=TOTAL - 2),
    policy=st.sampled_from(["failover", "miss-through"]),
    rebalance=st.booleans(),
)
def test_parallel_matches_serial_on_random_schedules(
    workers, crash_at, policy, rebalance
):
    extra = {"rebalance": dict(REBALANCE)} if rebalance else {}
    scenario = BASE.replace(
        faults={
            "events": [
                {"kind": "crash", "shard": 2, "at": crash_at},
                {"kind": "restart", "shard": 2, "at": crash_at + 1},
            ],
            "policy": policy,
        },
        **extra,
    )
    serial = run_scenario(scenario, keep_server=True)
    parallel = run_scenario(
        with_workers(scenario, workers), keep_server=True
    )
    assert comparable(parallel) == comparable(serial)
    assert shard_snapshots(parallel) == shard_snapshots(serial)


# ---------------------------------------------------------------------------
# Knob surface
# ---------------------------------------------------------------------------


def test_parallel_workers_requires_partitioned_replay():
    with pytest.raises(ConfigurationError, match="partitioned_replay"):
        ClusterConfig(
            shards=2, partitioned_replay=False, parallel_workers=2
        )


@pytest.mark.parametrize("bad", [-1, True, 2.5, "two"])
def test_parallel_workers_rejects_bad_values(bad):
    with pytest.raises(ConfigurationError, match="parallel_workers"):
        ClusterConfig(shards=2, parallel_workers=bad)


def test_parallel_workers_round_trips_and_defaults():
    config = ClusterConfig.from_dict({"shards": 2, "parallel_workers": 3})
    assert config.parallel_workers == 3
    assert ClusterConfig.from_dict(config.to_dict()) == config
    assert ClusterConfig(shards=2).parallel_workers == 0


def test_single_shard_stays_serial():
    # The dispatch guard: one shard has nothing to fan out, so the
    # parallel knob is a no-op (no workers, same result).
    scenario = BASE.replace(cluster={"shards": 1, "virtual_nodes": 4})
    serial = run_scenario(scenario, keep_server=True)
    parallel = run_scenario(
        with_workers(scenario, 4), keep_server=True
    )
    assert comparable(parallel) == comparable(serial)


def test_sweep_axis_reaches_parallel_workers():
    from repro.sim import Sweep

    sweep = Sweep(
        base=BASE, axes={"cluster.parallel_workers": [0, 2]}
    )
    results = sweep.run()
    assert len(results) == 2
    by_workers = {
        r.scenario.cluster["parallel_workers"]: r for r in results
    }
    assert set(by_workers) == {0, 2}
    assert (
        by_workers[2].overall_hit_rate == by_workers[0].overall_hit_rate
    )
    assert by_workers[2].hit_rates == by_workers[0].hit_rates


# ---------------------------------------------------------------------------
# Guards and failure modes
# ---------------------------------------------------------------------------


def test_parallel_replay_requires_fresh_cluster():
    workload = load_workload("zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS)
    compiled = workload.compiled
    cluster = build_cluster(with_workers(BASE, 2), workload)
    cluster.replay_compiled(compiled)  # first replay: fine
    with pytest.raises(ConfigurationError, match="fresh"):
        cluster.replay_compiled(compiled)  # warm engines: refused
    assert shm_entries() == []


def test_parallel_replay_requires_unscaled_budgets():
    workload = load_workload("zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS)
    compiled = workload.compiled
    cluster = build_cluster(with_workers(BASE, 2), workload)
    cluster.scale_shard_budget(0, cluster.shard_budget(0) * 0.5)
    with pytest.raises(ConfigurationError, match="unscaled"):
        cluster.replay_compiled(compiled)
    assert shm_entries() == []


def test_worker_failure_propagates_and_cleans_up():
    workload = load_workload("zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS)
    compiled = workload.compiled
    scenario = with_workers(BASE, 2)
    cluster = build_cluster(scenario, workload)
    from repro.cluster.routing import build_routing_plan

    plan = build_routing_plan(compiled, cluster.ring, cluster.replication)
    pool = WorkerPool(cluster, compiled, plan)
    try:
        with pytest.raises(RuntimeError, match="worker 0"):
            # Shard 99 does not exist on any worker: the owning-side
            # KeyError must come back as a parent-side RuntimeError
            # carrying the worker traceback.
            pool._call(0, ("scale", 99, 1.0))
    finally:
        pool.shutdown()
    assert shm_entries() == []


# ---------------------------------------------------------------------------
# Worker-side helpers, in process (subprocess code is invisible to
# coverage; the replay logic itself is exercised here directly)
# ---------------------------------------------------------------------------


def test_partition_shards_contiguous_and_balanced():
    blocks = partition_shards(10, 3)
    assert [len(b) for b in blocks] == [4, 3, 3]
    assert sorted(sum(blocks, [])) == list(range(10))
    flat = sum(blocks, [])
    assert flat == sorted(flat)  # contiguous ascending
    assert partition_shards(2, 5) == [[0], [1]]  # clamps to shards
    assert partition_shards(3, 1) == [[0, 1, 2]]


def make_direct_cluster(workers=0):
    scenario = BASE if workers == 0 else with_workers(BASE, workers)
    workload = load_workload("zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS)
    return build_cluster(scenario, workload), workload.compiled


def test_window_runs_matches_serial_window_in_process():
    import numpy as np

    from repro.cluster.routing import build_routing_plan

    serial_cluster, compiled = make_direct_cluster()
    plan = build_routing_plan(
        compiled, serial_cluster.ring, serial_cluster.replication
    )
    app_column = np.asarray(compiled.app_ids, dtype=np.int64)
    serial_cluster._replay_window(
        compiled, plan.shard_ids, app_column, 0, len(compiled)
    )

    mirror_cluster, _ = make_direct_cluster()
    servers = {
        shard: server
        for shard, server in enumerate(mirror_cluster.servers)
    }
    keys, op_codes, slab_classes, chunk_bytes, item_bytes = (
        compiled.replay_columns()
    )
    runs = window_runs(
        servers,
        compiled.app_table,
        mirror_cluster.shards,
        keys,
        op_codes,
        slab_classes,
        chunk_bytes,
        item_bytes,
        plan.shard_ids,
        app_column,
        0,
        len(compiled),
    )
    # The mirror's engines processed everything; its *registries* are
    # still empty until the tallies are applied (the parent's job).
    assert all(
        not server.stats.by_app_class
        for server in mirror_cluster.servers
    )
    apply_runs(mirror_cluster, compiled.app_table, runs)
    assert [
        counters_snapshot(s.stats) for s in mirror_cluster.servers
    ] == [counters_snapshot(s.stats) for s in serial_cluster.servers]


def test_window_runs_dead_shards_tally_without_engines():
    import numpy as np

    from repro.cache.stats import OUTCOME_DEAD
    from repro.cluster.routing import build_routing_plan

    cluster, compiled = make_direct_cluster()
    plan = build_routing_plan(compiled, cluster.ring, cluster.replication)
    app_column = np.asarray(compiled.app_ids, dtype=np.int64)
    servers = {
        shard: server for shard, server in enumerate(cluster.servers)
    }
    keys, op_codes, slab_classes, chunk_bytes, item_bytes = (
        compiled.replay_columns()
    )
    runs = window_runs(
        servers,
        compiled.app_table,
        cluster.shards,
        keys,
        op_codes,
        slab_classes,
        chunk_bytes,
        item_bytes,
        plan.shard_ids,
        app_column,
        0,
        1_000,
        dead=frozenset({1}),
    )
    dead_runs = [run for run in runs if run[0] == 1]
    assert dead_runs
    for _, _, tallies in dead_runs:
        for packed, count in tallies:
            assert packed >> 2 == OUTCOME_DEAD
            assert count > 0
    # Dead shard 1's engines never saw a request.
    assert cluster.servers[1].memory_in_use() == 0


def test_window_runs_skips_unowned_shards():
    import numpy as np

    from repro.cluster.routing import build_routing_plan

    cluster, compiled = make_direct_cluster()
    plan = build_routing_plan(compiled, cluster.ring, cluster.replication)
    app_column = np.asarray(compiled.app_ids, dtype=np.int64)
    servers = {0: cluster.servers[0]}  # own shard 0 only
    keys, op_codes, slab_classes, chunk_bytes, item_bytes = (
        compiled.replay_columns()
    )
    runs = window_runs(
        servers,
        compiled.app_table,
        cluster.shards,
        keys,
        op_codes,
        slab_classes,
        chunk_bytes,
        item_bytes,
        plan.shard_ids,
        app_column,
        0,
        len(compiled),
    )
    assert runs
    assert {run[0] for run in runs} == {0}
    # An empty window yields no runs at all.
    assert (
        window_runs(
            servers,
            compiled.app_table,
            cluster.shards,
            keys,
            op_codes,
            slab_classes,
            chunk_bytes,
            item_bytes,
            plan.shard_ids,
            app_column,
            0,
            0,
        )
        == []
    )


def test_build_shard_servers_rejects_misnamed_factory():
    from repro.sim.defaults import GEOMETRY

    cluster, _ = make_direct_cluster()
    factory = cluster.engine_factories["zipf01"]
    with pytest.raises(ConfigurationError, match="factory"):
        build_shard_servers(
            GEOMETRY, [0], [("renamed", 1024.0, factory)]
        )


def test_build_shard_servers_builds_cold_owned_shards():
    from repro.sim.defaults import GEOMETRY

    cluster, _ = make_direct_cluster()
    apps = [
        (app, cluster.app_shares[app], cluster.engine_factories[app])
        for app in cluster.engine_factories
    ]
    servers = build_shard_servers(GEOMETRY, [1, 3], apps)
    assert set(servers) == {1, 3}
    for shard, server in servers.items():
        assert isinstance(server, CacheServer)
        assert server.memory_in_use() == 0
        assert set(server.engines) == set(cluster.engine_factories)
        for app, engine in server.engines.items():
            assert engine.budget_bytes == cluster.app_shares[app]


def test_scale_engine_budgets_parity_between_empty_and_full():
    # The parent-mirror invariant: scaling an empty engine set and a
    # full one moves budget_bytes identically (only eviction counts --
    # returned, not stored -- may differ).
    cold, compiled = make_direct_cluster()
    warm, _ = make_direct_cluster()
    warm.replay_compiled(compiled)
    for target in (0.5, 1.75, 0.1):
        reference = cold.shard_budget(0) * target
        scale_engine_budgets(cold.servers[0].engines.values(), reference)
        scale_engine_budgets(warm.servers[0].engines.values(), reference)
        assert warm.shard_budget(0) == cold.shard_budget(0)
