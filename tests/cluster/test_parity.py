"""The cluster parity anchor.

A 1-shard cluster is the single-server path plus a routing layer that
routes everything to shard 0 and an aggregation layer over one
registry -- so at seed 0 it must reproduce the plain
:func:`run_scenario` results *bit for bit* (exact float equality, no
tolerances), for every scheme the experiments use. A >= 4-shard
dynamic-workload scenario must also run end to end through
``run_scenario`` and the CLI. The same discipline covers online
rebalancing: a ``rebalance`` block that is omitted or disabled
(``epoch_requests: 0``) must leave the static-split replay untouched
down to per-(app, class) counters on every shard.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import Scenario, Sweep, run_scenario

SCALE = 0.02
SEED = 0

MEMCACHIER = Scenario(
    workload="memcachier",
    scale=SCALE,
    seed=SEED,
    workload_params={"apps": [3, 19]},
)


def counters_snapshot(stats):
    return {
        key: (c.get_hits, c.get_misses, c.sets, c.shadow_hits, c.evictions)
        for key, c in stats.by_app_class.items()
    }


@pytest.mark.parametrize("scheme", ["default", "cliffhanger"])
def test_one_shard_cluster_bit_identical_to_server_path(scheme):
    base = MEMCACHIER.replace(scheme=scheme)
    plain = run_scenario(base, keep_server=True)
    clustered = run_scenario(
        base.replace(cluster={"shards": 1}), keep_server=True
    )
    assert clustered.hit_rates == plain.hit_rates  # exact float equality
    assert clustered.overall_hit_rate == plain.overall_hit_rate
    assert clustered.requests == plain.requests
    assert clustered.gets == plain.gets
    assert clustered.budgets == plain.budgets
    # Down to per-(app, slab class) counters.
    assert counters_snapshot(clustered.stats) == counters_snapshot(
        plain.stats
    )


def test_one_shard_solver_plans_bit_identical():
    base = MEMCACHIER.replace(scheme="planned", plans="solver")
    plain = run_scenario(base)
    clustered = run_scenario(base.replace(cluster={"shards": 1}))
    assert clustered.hit_rates == plain.hit_rates
    assert clustered.overall_hit_rate == plain.overall_hit_rate


def test_one_shard_report_is_consistent():
    result = run_scenario(MEMCACHIER.replace(cluster={"shards": 1}))
    report = result.cluster_report
    assert report["shards"] == 1
    assert report["imbalance"] == 1.0
    assert report["hot_shards"] == []
    assert report["requests"] == result.requests
    assert report["overall_hit_rate"] == result.overall_hit_rate


DYNAMIC = Scenario(
    workload="zipf-phases",
    scale=0.1,
    seed=SEED,
    workload_params={
        "apps": 2,
        "num_keys": 2_000,
        "requests_per_app": 8_000,
        "phases": [
            {"at": 0.0, "alpha": 1.1},
            {"at": 0.5, "alpha": 0.8, "offset": 2_000},
        ],
    },
    cluster={"shards": 4},
)


def test_multi_shard_dynamic_scenario_end_to_end():
    result = run_scenario(DYNAMIC)
    report = result.cluster_report
    assert report["shards"] == 4
    assert len(report["shard_loads"]) == 4
    assert all(load["requests"] > 0 for load in report["shard_loads"])
    assert (
        sum(load["requests"] for load in report["shard_loads"])
        == result.requests
    )
    assert 0.0 < result.overall_hit_rate < 1.0
    # Serialization round-trips with the cluster block and report.
    from repro.sim import ScenarioResult

    clone = ScenarioResult.from_dict(json.loads(result.to_json()))
    assert clone.scenario == result.scenario
    assert clone.cluster_report == report
    assert clone.scenario.cluster == DYNAMIC.cluster


def test_multi_shard_scenario_via_cli(capsys):
    from repro.experiments.cli import main

    spec = DYNAMIC.to_dict()
    assert main(["run", json.dumps(spec)]) == 0
    out = capsys.readouterr().out
    assert "4 shard(s)" in out
    assert "shard 3:" in out


def test_sweep_axis_over_shard_counts():
    sweep = Sweep(
        base=Scenario(
            workload="zipf",
            scale=0.1,
            workload_params={
                "apps": 2,
                "num_keys": 800,
                "requests_per_app": 6_000,
            },
        ),
        axes={"cluster.shards": [1, 2]},
    )
    grid = sweep.scenarios()
    assert [s.cluster["shards"] for s in grid] == [1, 2]
    assert grid[0].name == "shards=1"
    outcome = sweep.run()
    assert [r.cluster_report["shards"] for r in outcome] == [1, 2]


def test_observer_rejected_for_cluster_scenarios():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="observer"):
        run_scenario(DYNAMIC, observer=lambda request, outcome: None)


# ---------------------------------------------------------------------------
# Rebalance parity: without an *enabled* rebalance block, the cluster
# replay must stay on the static-split path, bit for bit.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "rebalance",
    [
        {"epoch_requests": 0},
        {"epoch_requests": 0, "policy": "load", "credit_bytes": 65536.0},
    ],
    ids=["epoch-zero", "epoch-zero-load"],
)
def test_disabled_rebalance_bit_identical_to_static_split(rebalance):
    plain = run_scenario(DYNAMIC, keep_server=True)
    gated = run_scenario(
        DYNAMIC.replace(rebalance=rebalance), keep_server=True
    )
    assert gated.hit_rates == plain.hit_rates  # exact float equality
    assert gated.overall_hit_rate == plain.overall_hit_rate
    assert gated.requests == plain.requests
    assert gated.budgets == plain.budgets
    # Down to per-(app, slab class) counters, aggregated...
    assert counters_snapshot(gated.stats) == counters_snapshot(plain.stats)
    # ...and per shard server.
    for plain_shard, gated_shard in zip(
        plain.cluster.servers, gated.cluster.servers
    ):
        assert counters_snapshot(gated_shard.stats) == counters_snapshot(
            plain_shard.stats
        )
    # The report shows no rebalance section either way.
    assert plain.cluster_report["rebalance"] is None
    assert gated.cluster_report["rebalance"] is None


def test_one_shard_disabled_rebalance_still_matches_server_path():
    plain = run_scenario(MEMCACHIER, keep_server=True)
    gated = run_scenario(
        MEMCACHIER.replace(
            cluster={"shards": 1}, rebalance={"epoch_requests": 0}
        ),
        keep_server=True,
    )
    assert gated.hit_rates == plain.hit_rates
    assert gated.overall_hit_rate == plain.overall_hit_rate
    assert counters_snapshot(gated.stats) == counters_snapshot(plain.stats)


# ---------------------------------------------------------------------------
# Partitioned-replay parity: the default routing-plan path must reproduce
# the legacy per-request loop (``partitioned_replay: false``) bit for bit,
# through the full scenario layer -- static splits, replication > 1, and
# the epoch-driven rebalance path.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "cluster",
    [
        {"shards": 4},
        {"shards": 4, "replication": 2},
        {"shards": 3, "replication": 3, "hash_seed": 7, "virtual_nodes": 8},
    ],
    ids=["static", "replicated", "replicated-uneven-ring"],
)
def test_partitioned_scenario_bit_identical_to_legacy_loop(cluster):
    base = DYNAMIC.replace(cluster=cluster)
    fast = run_scenario(base, keep_server=True)
    legacy = run_scenario(
        base.replace(cluster=dict(cluster, partitioned_replay=False)),
        keep_server=True,
    )
    assert fast.hit_rates == legacy.hit_rates  # exact float equality
    assert fast.overall_hit_rate == legacy.overall_hit_rate
    assert fast.requests == legacy.requests
    assert counters_snapshot(fast.stats) == counters_snapshot(legacy.stats)
    for fast_shard, legacy_shard in zip(
        fast.cluster.servers, legacy.cluster.servers
    ):
        assert counters_snapshot(fast_shard.stats) == counters_snapshot(
            legacy_shard.stats
        )
    # The knob is the only report difference.
    fast_report = fast.cluster_report
    legacy_report = legacy.cluster_report
    assert fast_report["shard_loads"] == legacy_report["shard_loads"]
    assert fast_report["imbalance"] == legacy_report["imbalance"]


def test_partitioned_rebalance_scenario_bit_identical_to_legacy_loop():
    base = DYNAMIC.replace(
        scheme="hill",
        cluster={"shards": 4, "virtual_nodes": 4},
        rebalance={"epoch_requests": 2000, "policy": "shadow"},
    )
    fast = run_scenario(base, keep_server=True)
    legacy = run_scenario(
        base.replace(
            cluster={
                "shards": 4,
                "virtual_nodes": 4,
                "partitioned_replay": False,
            }
        ),
        keep_server=True,
    )
    assert fast.hit_rates == legacy.hit_rates
    assert fast.overall_hit_rate == legacy.overall_hit_rate
    for fast_shard, legacy_shard in zip(
        fast.cluster.servers, legacy.cluster.servers
    ):
        assert counters_snapshot(fast_shard.stats) == counters_snapshot(
            legacy_shard.stats
        )
    fast_rebalance = fast.cluster_report["rebalance"]
    legacy_rebalance = legacy.cluster_report["rebalance"]
    assert fast_rebalance["transfers"] == legacy_rebalance["transfers"]
    assert fast_rebalance["shard_budgets"] == legacy_rebalance["shard_budgets"]
    assert fast_rebalance["timeline"] == legacy_rebalance["timeline"]
