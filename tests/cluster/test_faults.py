"""Fault injection: schedule validation, failover parity, recovery.

Three layers of guarantees:

1. **Schedules are data.** :class:`FaultEvent`/:class:`FaultSchedule`
   validate eagerly (unknown kinds, non-monotonic offsets, double
   crashes, restart-before-crash) and round-trip through JSON, so a
   scenario's ``faults`` block is sweepable like any other knob.
2. **No faults means no drift.** An empty or omitted schedule leaves the
   replay bit-identical to the fault-free paths -- exact float equality
   down to per-shard per-(app, class) counters, on both the partitioned
   fast path and the legacy per-request oracle.
3. **Faulted replays stay deterministic and conservative.** A Hypothesis
   property drives random schedules through both replay loops and
   asserts they agree bit for bit (including dead-shard tagging); with a
   rebalancer attached, total budget is conserved across every sampled
   epoch and no shard ever pierces the floor; a fixed seed reproduces
   the identical fault timeline.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import FaultEvent, FaultInjector, FaultSchedule
from repro.common.errors import ConfigurationError
from repro.sim import Scenario, load_workload, run_scenario

SEED = 0

#: Two Zipf tenants, ~1,600 requests: big enough to cross fault barriers
#: and rebalance epochs, small enough for Hypothesis example counts.
WORKLOAD_PARAMS = {
    "apps": 2,
    "num_keys": 2_000,
    "requests_per_app": 8_000,
}

BASE = Scenario(
    scheme="hill",
    workload="zipf",
    scale=0.1,
    seed=SEED,
    workload_params=dict(WORKLOAD_PARAMS),
    cluster={"shards": 4, "virtual_nodes": 4},
)

TOTAL = sum(
    load_workload(
        "zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS
    ).requests_per_app.values()
)


def counters_snapshot(stats):
    return {
        key: (
            c.get_hits,
            c.get_misses,
            c.sets,
            c.shadow_hits,
            c.evictions,
            c.dead_requests,
        )
        for key, c in stats.by_app_class.items()
    }


def shard_snapshots(result):
    return [
        counters_snapshot(server.stats)
        for server in result.cluster.servers
    ]


# ---------------------------------------------------------------------------
# Schedules are validated, serializable data
# ---------------------------------------------------------------------------


def test_event_round_trips_through_json():
    event = FaultEvent(kind="crash", shard=2, at=500)
    clone = FaultEvent.from_dict(json.loads(json.dumps(event.to_dict())))
    assert clone == event


def test_schedule_round_trips_through_json():
    schedule = FaultSchedule(
        events=(
            FaultEvent("crash", 1, 100),
            FaultEvent("restart", 1, 300),
        ),
        policy="miss-through",
        sample_requests=50,
        recovery_epsilon=0.05,
    )
    clone = FaultSchedule.from_dict(
        json.loads(json.dumps(schedule.to_dict()))
    )
    assert clone == schedule
    assert clone.enabled


def test_empty_schedule_is_disabled():
    assert not FaultSchedule().enabled
    assert not FaultSchedule.from_dict({"events": []}).enabled
    assert FaultSchedule.from_dict(None) == FaultSchedule()


@pytest.mark.parametrize(
    "bad, match",
    [
        (dict(kind="explode", shard=0, at=1), "explode"),
        (dict(kind="crash", shard=-1, at=1), "shard"),
        (dict(kind="crash", shard=0, at=-5), "offset"),
        (dict(kind="crash", shard=0), "missing"),
        (dict(kind="crash", shard=0, at=1, when=2), "unknown"),
    ],
)
def test_bad_events_rejected(bad, match):
    with pytest.raises(ConfigurationError, match=match):
        FaultEvent.from_dict(bad)


@pytest.mark.parametrize(
    "events, match",
    [
        (
            [("crash", 1, 200), ("restart", 1, 100)],
            "non-decreasing",
        ),
        (
            [("crash", 1, 100), ("crash", 1, 200)],
            "crashed twice",
        ),
        ([("restart", 1, 100)], "before any crash"),
    ],
)
def test_bad_schedules_rejected(events, match):
    with pytest.raises(ConfigurationError, match=match):
        FaultSchedule(
            events=tuple(FaultEvent(*event) for event in events)
        )


def test_schedule_shard_range_checked_against_cluster():
    schedule = FaultSchedule(events=(FaultEvent("crash", 7, 100),))
    with pytest.raises(ConfigurationError, match="7"):
        schedule.validate_for(4)


def test_schedule_must_keep_one_shard_live():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 0, 100), FaultEvent("crash", 1, 100))
    )
    with pytest.raises(ConfigurationError, match="live"):
        schedule.validate_for(2)
    schedule.validate_for(3)  # a third shard survives


def test_scenario_normalizes_faults_block():
    scenario = BASE.replace(
        faults={"events": [{"kind": "crash", "shard": 1, "at": 100}]}
    )
    assert scenario.faults["policy"] == "failover"
    assert scenario.faults["events"][0]["at"] == 100
    assert "faults-failoverx1" in scenario.label()
    clone = Scenario.from_dict(json.loads(scenario.to_json()))
    assert clone == scenario


def test_single_shard_cluster_rejects_enabled_schedule():
    # Crashing the only shard trips the at-least-one-live invariant.
    with pytest.raises(ConfigurationError, match="live"):
        BASE.replace(
            cluster={"shards": 1},
            faults={"events": [{"kind": "crash", "shard": 0, "at": 10}]},
        )


# ---------------------------------------------------------------------------
# No faults means no drift (both replay loops)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "partitioned", [True, False], ids=["partitioned", "legacy"]
)
def test_empty_schedule_bit_identical_to_no_faults(partitioned):
    cluster = dict(BASE.cluster, partitioned_replay=partitioned)
    plain = run_scenario(
        BASE.replace(cluster=cluster), keep_server=True
    )
    gated = run_scenario(
        BASE.replace(cluster=cluster, faults={"events": []}),
        keep_server=True,
    )
    assert gated.hit_rates == plain.hit_rates  # exact float equality
    assert gated.overall_hit_rate == plain.overall_hit_rate
    assert gated.requests == plain.requests
    assert shard_snapshots(gated) == shard_snapshots(plain)
    # Neither replay grew a faults section.
    assert plain.cluster_report["faults"] is None
    assert gated.cluster_report["faults"] is None


def test_empty_schedule_with_rebalance_bit_identical():
    rebalance = {"epoch_requests": 400, "policy": "shadow"}
    plain = run_scenario(
        BASE.replace(rebalance=rebalance), keep_server=True
    )
    gated = run_scenario(
        BASE.replace(rebalance=rebalance, faults={"events": []}),
        keep_server=True,
    )
    assert gated.hit_rates == plain.hit_rates
    assert shard_snapshots(gated) == shard_snapshots(plain)
    assert (
        gated.cluster_report["rebalance"]
        == plain.cluster_report["rebalance"]
    )


# ---------------------------------------------------------------------------
# Faulted replays: behavior and report
# ---------------------------------------------------------------------------

CRASH_AT = TOTAL // 4
RESTART_AT = TOTAL // 2

SCHEDULE = {
    "events": [
        {"kind": "crash", "shard": 1, "at": CRASH_AT},
        {"kind": "restart", "shard": 1, "at": RESTART_AT},
    ]
}


def test_failover_reroutes_instead_of_missing():
    result = run_scenario(BASE.replace(faults=SCHEDULE), keep_server=True)
    faults = result.cluster_report["faults"]
    assert faults["policy"] == "failover"
    assert faults["dead_requests"] == 0
    crash = faults["crashes"][0]
    assert crash == {
        "shard": 1,
        "crash_at": CRASH_AT,
        "pre_fault_hit_rate": crash["pre_fault_hit_rate"],
        "restart_at": RESTART_AT,
        "downtime_requests": RESTART_AT - CRASH_AT,
        "recovered_at": crash["recovered_at"],
        "time_to_recover": crash["time_to_recover"],
        "miss_cost": crash["miss_cost"],
        "budget_moved_bytes": 0.0,
    }
    # The dead shard served nothing during the outage, but every request
    # still landed somewhere: totals match the fault-free run.
    plain = run_scenario(BASE)
    assert result.requests == plain.requests
    assert faults["timeline"]["series"]["live_shards"].count(3.0) > 0


def test_miss_through_tags_dead_requests():
    result = run_scenario(
        BASE.replace(faults=dict(SCHEDULE, policy="miss-through")),
        keep_server=True,
    )
    faults = result.cluster_report["faults"]
    assert faults["policy"] == "miss-through"
    assert faults["dead_requests"] > 0
    # Dead requests land on the dead shard's own registry, tagged.
    shard_stats = result.cluster.servers[1].stats
    assert shard_stats.total.dead_requests == faults["dead_requests"]
    # Rerouting beats swallowing the requests.
    failover = run_scenario(BASE.replace(faults=SCHEDULE))
    assert failover.overall_hit_rate > result.overall_hit_rate


def test_crash_without_restart_reports_open_downtime():
    result = run_scenario(
        BASE.replace(
            faults={
                "events": [{"kind": "crash", "shard": 1, "at": CRASH_AT}]
            }
        )
    )
    crash = result.cluster_report["faults"]["crashes"][0]
    assert crash["restart_at"] is None
    assert crash["downtime_requests"] == TOTAL - CRASH_AT
    assert crash["recovered_at"] is None
    assert crash["time_to_recover"] is None


def test_recovery_is_finite_with_wide_epsilon():
    result = run_scenario(
        BASE.replace(faults=dict(SCHEDULE, recovery_epsilon=0.2))
    )
    crash = result.cluster_report["faults"]["crashes"][0]
    assert crash["recovered_at"] is not None
    assert crash["time_to_recover"] == crash["recovered_at"] - CRASH_AT
    assert crash["time_to_recover"] >= RESTART_AT - CRASH_AT


def test_replication_absorbs_failover():
    replicated = dict(BASE.cluster, replication=2)
    healthy = run_scenario(BASE.replace(cluster=replicated))
    faulted = run_scenario(
        BASE.replace(cluster=replicated, faults=SCHEDULE)
    )
    assert faulted.requests == healthy.requests
    assert faulted.cluster_report["faults"]["dead_requests"] == 0


def test_rebalancer_moves_and_restores_budget():
    rebalance = {"epoch_requests": 400, "policy": "shadow"}
    result = run_scenario(
        BASE.replace(faults=SCHEDULE, rebalance=rebalance),
        keep_server=True,
    )
    crash = result.cluster_report["faults"]["crashes"][0]
    assert crash["budget_moved_bytes"] > 0
    cluster = result.cluster
    total = cluster.memory_reserved()
    budgets = [
        sum(e.budget_bytes for e in server.engines.values())
        for server in cluster.servers
    ]
    assert sum(budgets) == pytest.approx(total)
    floor = cluster.rebalancer.floor_bytes
    assert all(b >= floor - 1e-6 for b in budgets)


def test_injector_rejects_out_of_range_schedule():
    from repro.sim.runner import build_cluster

    trace = load_workload("zipf", scale=0.1, seed=SEED, **WORKLOAD_PARAMS)
    cluster = build_cluster(BASE, trace)
    schedule = FaultSchedule(events=(FaultEvent("crash", 9, 10),))
    with pytest.raises(ConfigurationError, match="9"):
        FaultInjector(cluster, schedule)


def test_fixed_seed_reproduces_identical_fault_timeline():
    scenario = BASE.replace(
        faults=SCHEDULE,
        rebalance={"epoch_requests": 400, "policy": "shadow"},
    )
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first.cluster_report["faults"] == second.cluster_report["faults"]
    assert first.hit_rates == second.hit_rates


# ---------------------------------------------------------------------------
# Property: both replay loops agree on any valid schedule, and the
# rebalancer conserves budget around crashes.
# ---------------------------------------------------------------------------


@st.composite
def schedules(draw, total=TOTAL, shards=4):
    """A valid crash(/restart) schedule over 1-2 distinct shards."""
    pairs = draw(st.integers(min_value=1, max_value=2))
    targets = draw(
        st.lists(
            st.integers(min_value=0, max_value=shards - 1),
            min_size=pairs,
            max_size=pairs,
            unique=True,
        )
    )
    offsets = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=total - 1),
                min_size=2 * pairs,
                max_size=2 * pairs,
                unique=True,
            )
        )
    )
    # Crashes first (offset order), then restarts in the same shard
    # order: globally non-decreasing and per-shard alternating. With
    # pairs < shards at least one shard always stays live.
    events = [
        {"kind": "crash", "shard": shard, "at": offsets[i]}
        for i, shard in enumerate(targets)
    ] + [
        {"kind": "restart", "shard": shard, "at": offsets[pairs + i]}
        for i, shard in enumerate(targets)
    ]
    policy = draw(st.sampled_from(["failover", "miss-through"]))
    return {"events": events, "policy": policy}


@settings(max_examples=15, deadline=None)
@given(
    faults=schedules(),
    replication=st.integers(min_value=1, max_value=2),
    rebalance=st.booleans(),
)
def test_partitioned_faulted_replay_matches_legacy_oracle(
    faults, replication, rebalance
):
    extra = {}
    if rebalance:
        extra["rebalance"] = {"epoch_requests": 400, "policy": "shadow"}
    base = BASE.replace(
        cluster=dict(BASE.cluster, replication=replication),
        faults=faults,
        **extra,
    )
    fast = run_scenario(base, keep_server=True)
    legacy = run_scenario(
        base.replace(
            cluster=dict(base.cluster, partitioned_replay=False)
        ),
        keep_server=True,
    )
    assert fast.hit_rates == legacy.hit_rates  # exact float equality
    assert fast.overall_hit_rate == legacy.overall_hit_rate
    assert shard_snapshots(fast) == shard_snapshots(legacy)
    assert (
        fast.cluster_report["faults"] == legacy.cluster_report["faults"]
    )
    if rebalance:
        # Conservation every sampled epoch: the rebalancer's timeline
        # records each shard's budget at every epoch barrier, through
        # crashes (drain to floor, lend to the living) and restarts
        # (reclaim and rebuild).
        total = fast.cluster.memory_reserved()
        floor = fast.cluster.rebalancer.floor_bytes
        timeline = fast.cluster_report["rebalance"]["timeline"]
        shards = fast.cluster_report["shards"]
        for i, _ in enumerate(timeline["times"]):
            sampled = [
                timeline["series"][f"shard{s}"][i] for s in range(shards)
            ]
            assert sum(sampled) == pytest.approx(total)
            assert all(b >= floor - 1e-6 for b in sampled)
