"""Cluster routing, aggregation, replication and the load report."""

import pytest

from repro.cache.engines import FirstComeFirstServeEngine
from repro.cache.slabs import SlabGeometry
from repro.cluster import Cluster, ClusterConfig
from repro.common.errors import ConfigurationError
from repro.workloads.compiled import CompiledTrace
from repro.workloads.trace import Request

GEO = SlabGeometry.default()


def fcfs_factory(app):
    return lambda shard, share: FirstComeFirstServeEngine(app, share, GEO)


def build(shards, replication=1, budget=1 << 20, apps=("a",), **kwargs):
    cluster = Cluster(
        ClusterConfig(shards=shards, replication=replication, **kwargs), GEO
    )
    for app in apps:
        cluster.add_app(app, budget, fcfs_factory(app))
    return cluster


def compile_gets(keys, app="a", size=100):
    return CompiledTrace.compile(
        [
            Request(time=float(i), app=app, key=key, op="get", value_size=size)
            for i, key in enumerate(keys)
        ],
        GEO,
    )


class TestConfig:
    def test_defaults_and_round_trip(self):
        config = ClusterConfig.from_dict({"shards": 4})
        assert config == ClusterConfig.from_dict(config.to_dict())
        assert config.replication == 1

    def test_partitioned_replay_knob_round_trips(self):
        config = ClusterConfig.from_dict(
            {"shards": 2, "partitioned_replay": False}
        )
        assert config.partitioned_replay is False
        assert config == ClusterConfig.from_dict(config.to_dict())
        assert ClusterConfig.from_dict({"shards": 2}).partitioned_replay

    def test_partitioned_replay_must_be_boolean(self):
        with pytest.raises(ConfigurationError, match="partitioned_replay"):
            ClusterConfig.from_dict(
                {"shards": 2, "partitioned_replay": "false"}
            )

    def test_unknown_and_bad_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cluster"):
            ClusterConfig.from_dict({"shards": 2, "nodes": 3})
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_dict({"shards": 0})
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_dict({"shards": "two"})
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_dict({"replication": 0})
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_dict("not a dict")


class TestRouting:
    def test_each_key_lands_on_exactly_one_shard(self):
        cluster = build(4)
        keys = [f"k{i}" for i in range(300)]
        cluster.replay_compiled(compile_gets(keys + keys))
        # Second pass hits everywhere: every key's repeat request went
        # to the shard that cached it.
        merged = cluster.aggregate_stats()
        assert merged.total.get_hits == len(keys)
        assert merged.total.get_misses == len(keys)

    def test_per_shard_stats_sum_to_aggregate(self):
        cluster = build(4)
        cluster.replay_compiled(compile_gets([f"k{i}" for i in range(500)]))
        merged = cluster.aggregate_stats()
        assert (
            sum(s.stats.total.gets for s in cluster.servers)
            == merged.total.gets
            == 500
        )

    def test_object_api_routes_like_the_ring(self):
        cluster = build(3)
        request = Request(0.0, "a", "hot", "get", value_size=100)
        cluster.process(request)
        shard = cluster.ring.shard_for("hot")
        assert cluster.servers[shard].stats.total.gets == 1

    def test_unknown_app_rejected(self):
        cluster = build(2)
        with pytest.raises(ConfigurationError, match="unknown app"):
            cluster.replay_compiled(compile_gets(["k"], app="ghost"))

    def test_geometry_mismatch_rejected(self):
        cluster = build(2)
        other = CompiledTrace.compile(
            [Request(0.0, "a", "k", "get", value_size=100)],
            SlabGeometry((64, 4096)),
        )
        with pytest.raises(ConfigurationError, match="slab geometry"):
            cluster.replay_compiled(other)

    def test_factory_app_mismatch_rejected(self):
        cluster = Cluster(ClusterConfig(shards=2), GEO)
        with pytest.raises(ConfigurationError, match="factory"):
            cluster.add_app("a", 1 << 20, fcfs_factory("b"))


class TestReplication:
    def test_replication_spreads_a_hot_key(self):
        cluster = build(4, replication=2)
        cluster.replay_compiled(compile_gets(["hot"] * 400))
        loads = [s.stats.total.gets for s in cluster.servers]
        # Round-robin over the 2 replicas: exactly two shards, 200 each.
        assert sorted(loads, reverse=True)[:2] == [200, 200]
        assert sum(loads) == 400

    def test_replication_clamped_to_shard_count(self):
        cluster = build(2, replication=8)
        assert cluster.replication == 2
        # The clamp happens in the config, so spec, config and report
        # all show the same effective value.
        assert cluster.config.replication == 2
        assert ClusterConfig.from_dict(
            {"shards": 2, "replication": 8}
        ).to_dict()["replication"] == 2

    def test_replicas_fill_independently(self):
        cluster = build(4, replication=2)
        # 4 requests round-robin over 2 replicas: each replica sees the
        # key twice -- one cold miss then one hit apiece.
        cluster.replay_compiled(compile_gets(["hot"] * 4))
        merged = cluster.aggregate_stats()
        assert merged.total.get_misses == 2
        assert merged.total.get_hits == 2


class TestReport:
    def test_report_fields_and_totals(self):
        cluster = build(4)
        cluster.replay_compiled(compile_gets([f"k{i}" for i in range(400)]))
        report = cluster.report()
        assert report.shards == 4
        assert sum(load.requests for load in report.shard_loads) == 400
        assert report.requests == 400
        assert report.imbalance >= 1.0
        payload = report.to_dict()
        assert payload["shards"] == 4
        assert len(payload["shard_loads"]) == 4
        assert "hot shards" in report.render()

    def test_hot_shard_detection(self):
        cluster = build(4)
        hot_shard = cluster.ring.shard_for("hot")
        keys = ["hot"] * 900 + [f"k{i}" for i in range(100)]
        cluster.replay_compiled(compile_gets(keys))
        report = cluster.report()
        assert hot_shard in report.hot_shards
        assert report.imbalance > 2.0

    def test_memory_accounting_sums_shards(self):
        cluster = build(2, budget=1 << 20)
        cluster.replay_compiled(compile_gets([f"k{i}" for i in range(50)]))
        assert cluster.memory_reserved() == pytest.approx(1 << 20)
        assert 0 < cluster.memory_in_use() <= cluster.memory_reserved()


class TestRebalancerAttachment:
    """Cluster-level rebalancing API, below the Scenario layer."""

    def test_report_carries_no_rebalance_section_by_default(self):
        cluster = build(2)
        cluster.replay_compiled(compile_gets([f"k{i}" for i in range(50)]))
        assert cluster.rebalancer is None
        assert cluster.report().to_dict()["rebalance"] is None

    def test_attached_rebalancer_fires_epochs_and_moves_load_budget(self):
        from repro.cluster import RebalanceConfig, Rebalancer

        cluster = build(4, budget=1 << 20)
        cluster.attach_rebalancer(
            Rebalancer(
                cluster,
                RebalanceConfig(
                    epoch_requests=100,
                    credit_bytes=4096.0,
                    policy="load",
                ),
                seed=0,
            )
        )
        # One hot key dominates: its shard should win every epoch.
        hot_shard = cluster.ring.shard_for("hot")
        keys = (["hot"] * 9 + ["cold"]) * 100
        cluster.replay_compiled(compile_gets(keys))
        report = cluster.report().to_dict()["rebalance"]
        assert report["epochs"] == len(keys) // 100
        assert report["transfers"] == report["epochs"]
        budgets = report["shard_budgets"]
        assert budgets[hot_shard] == max(budgets)
        assert sum(budgets) == pytest.approx(1 << 20)  # app total conserved
        assert "rebalance (load)" in cluster.report().render()
