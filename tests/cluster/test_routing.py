"""Routing plans: vectorized hashing, partitioning, caching, and the
partitioned-vs-oracle bit-identity property.

The partitioned cluster replay stands on three exact equivalences:

* the bulk splitmix64 pass equals :func:`stable_hash_u64` per key;
* the plan's ``shard_ids`` equal the legacy loop's lazy ring lookups
  and round-robin replica counters;
* replaying per-(shard, app) runs equals the interleaved per-request
  loop, down to per-shard per-(app, class) counters -- pinned by a
  Hypothesis property over random shard counts, replication factors,
  hash seeds, and traces with deletes, against the kept-as-oracle
  ``cluster.partitioned_replay: false`` path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.engines import FirstComeFirstServeEngine
from repro.cache.slabs import SlabGeometry
from repro.cluster import (
    Cluster,
    ClusterConfig,
    RebalanceConfig,
    Rebalancer,
    RoutingPlan,
    build_routing_plan,
    get_routing_plan,
)
from repro.cluster.hashring import HashRing
from repro.cluster.routing import (
    effective_replication,
    hash_keys_u64,
    occurrence_index,
    plan_cache_key,
)
from repro.common.errors import ConfigurationError, TraceFormatError
from repro.common.hashing import stable_hash_u64
from repro.workloads.compiled import CompiledTrace, TraceCache
from repro.workloads.trace import Request

GEO = SlabGeometry.default()


def compile_trace(rows):
    """rows: (app, key, op, value_size) tuples."""
    return CompiledTrace.compile(
        [
            Request(
                time=float(i), app=app, key=key, op=op, value_size=size
            )
            for i, (app, key, op, size) in enumerate(rows)
        ],
        GEO,
    )


# ---------------------------------------------------------------------------
# Vectorized hashing and turn sequences
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("salt", [0, 7, 2**63 - 1])
def test_bulk_hash_matches_scalar_hash(salt):
    keys = (
        [f"app3:key{i:06d}" for i in range(500)]
        + ["a", "a" * 100, "héllo", "κλειδί", "日本語キー"]
    )
    assert hash_keys_u64(keys, salt=salt).tolist() == [
        stable_hash_u64(key, salt=salt) for key in keys
    ]


def test_bulk_hash_empty_column():
    assert len(hash_keys_u64([], salt=3)) == 0


def test_occurrence_index_is_the_lazy_turn_counter():
    key_ids = np.array([0, 1, 0, 0, 2, 1, 0], dtype=np.int64)
    assert occurrence_index(key_ids).tolist() == [0, 0, 1, 2, 0, 1, 3]
    assert len(occurrence_index(np.zeros(0, dtype=np.int64))) == 0


# ---------------------------------------------------------------------------
# Plan vs. the lazy per-request routing oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "shards,replication,seed,vnodes",
    [(1, 1, 0, 64), (4, 1, 0, 64), (4, 2, 3, 8), (5, 3, 1, 4), (3, 3, 9, 16)],
)
def test_plan_matches_lazy_routing(shards, replication, seed, vnodes):
    trace = compile_trace(
        [
            ("a", f"k{i % 37:03d}", "get", 100 + 8 * (i % 11))
            for i in range(600)
        ]
    )
    ring = HashRing(shards, seed=seed, virtual_nodes=vnodes)
    plan = build_routing_plan(trace, ring, replication)
    effective = min(replication, shards)
    replicas_of, turn_of, expected = {}, {}, []
    for key_id, key in zip(trace.key_ids, trace.keys):
        if effective > 1:
            choices = replicas_of.get(key_id)
            if choices is None:
                choices = replicas_of[key_id] = ring.shards_for(
                    key, effective
                )
            turn = turn_of.get(key_id, 0)
            turn_of[key_id] = turn + 1
            expected.append(choices[turn % len(choices)])
        else:
            expected.append(ring.shard_for(key))
    assert plan.shard_ids.tolist() == expected
    assert plan.shards == shards
    assert plan.replication == effective


def test_successor_table_matches_shards_for():
    ring = HashRing(5, seed=2, virtual_nodes=8)
    tokens, _ = ring.token_table()
    table = ring.successor_table(3)
    for key in (f"k{i}" for i in range(200)):
        token = stable_hash_u64(key, salt=ring.seed)
        position = np.searchsorted(
            np.asarray(tokens, dtype=np.uint64), token, side="right"
        ) % len(tokens)
        assert table[position] == ring.shards_for(key, 3)


def test_stale_cached_plan_is_rebuilt_and_repaired(tmp_path):
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(60)])
    ring = HashRing(4, seed=0)
    cache = TraceCache(directory=tmp_path)
    key = plan_cache_key(trace, ring, 2)
    # Poison the cache with a plan of the wrong shape under this key.
    bogus = build_routing_plan(trace.slice(0, 5), HashRing(2, seed=9), 1)
    cache.store_plan(key, bogus)
    healed = get_routing_plan(trace, ring, 2, cache=cache)
    expected = build_routing_plan(trace, ring, 2)
    assert healed.shard_ids.tolist() == expected.shard_ids.tolist()
    # The poisoned entry was overwritten in both levels: a fresh fetch
    # (memory) and a fresh cache instance (disk) both serve the repair.
    assert cache.get_or_build_plan(key, lambda: None) is healed
    reloaded = TraceCache(directory=tmp_path).get_or_build_plan(
        key, lambda: None
    )
    assert reloaded.shard_ids.tolist() == expected.shard_ids.tolist()


# ---------------------------------------------------------------------------
# Caching: save/load round trip, two-level fetch, digest keys
# ---------------------------------------------------------------------------


def test_plan_round_trips_through_disk(tmp_path):
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(50)])
    plan = build_routing_plan(trace, HashRing(3, seed=4), 2)
    path = plan.save(tmp_path / "plan.npz")
    clone = RoutingPlan.load(path)
    assert clone.shards == plan.shards
    assert clone.hash_seed == plan.hash_seed
    assert clone.virtual_nodes == plan.virtual_nodes
    assert clone.replication == plan.replication
    assert clone.shard_ids.tolist() == plan.shard_ids.tolist()


def test_trace_cache_builds_once_and_reloads(tmp_path):
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(80)])
    ring = HashRing(4, seed=0)
    cache = TraceCache(directory=tmp_path)
    builds = []

    def factory():
        builds.append(1)
        return build_routing_plan(trace, ring, 1)

    key = plan_cache_key(trace, ring, 1)
    first = cache.get_or_build_plan(key, factory)
    again = cache.get_or_build_plan(key, factory)
    assert again is first  # memory hit
    assert len(builds) == 1
    # A fresh cache instance must come back from disk, not rebuild.
    cold = TraceCache(directory=tmp_path)
    reloaded = cold.get_or_build_plan(key, factory)
    assert len(builds) == 1
    assert reloaded.shard_ids.tolist() == first.shard_ids.tolist()


def test_trace_cache_memory_only_when_disk_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    cache = TraceCache()
    assert cache.directory is None  # no on-disk level at all
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(20)])
    ring = HashRing(2, seed=0)
    key = plan_cache_key(trace, ring, 1)
    plan = cache.get_or_build_plan(
        key, lambda: build_routing_plan(trace, ring, 1)
    )
    # Memory level still serves the plan (factory must not rerun).
    assert cache.get_or_build_plan(key, lambda: None) is plan


def test_get_routing_plan_uses_supplied_cache(tmp_path):
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(40)])
    ring = HashRing(3, seed=1)
    cache = TraceCache(directory=tmp_path)
    plan = get_routing_plan(trace, ring, 2, cache=cache)
    assert get_routing_plan(trace, ring, 2, cache=cache) is plan
    assert plan.shard_ids.tolist() == build_routing_plan(
        trace, ring, 2
    ).shard_ids.tolist()


def test_digest_covers_keys_not_budgets():
    base = [("a", f"k{i % 7}", "get", 100) for i in range(40)]
    trace = compile_trace(base)
    same_keys = compile_trace(
        [(app, key, "set", size + 8) for app, key, op, size in base]
    )
    different = compile_trace(base[:-1])
    assert trace.routing_digest() == same_keys.routing_digest()
    assert trace.routing_digest() != different.routing_digest()


# ---------------------------------------------------------------------------
# Guard rails
# ---------------------------------------------------------------------------


def fcfs_cluster(shards, replication=1, partitioned=True, seed=5, apps=("a",)):
    cluster = Cluster(
        ClusterConfig(
            shards=shards,
            replication=replication,
            hash_seed=seed,
            virtual_nodes=8,
            partitioned_replay=partitioned,
        ),
        GEO,
    )
    for app in apps:
        cluster.add_app(
            app,
            1 << 19,
            lambda shard, share, app=app: FirstComeFirstServeEngine(
                app, share, GEO
            ),
        )
    return cluster


def test_mismatched_plan_rejected():
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(30)])
    cluster = fcfs_cluster(3)
    wrong_ring = build_routing_plan(trace, HashRing(2, seed=5), 1)
    with pytest.raises(ConfigurationError, match="routing plan mismatch"):
        cluster.replay_compiled(trace, plan=wrong_ring)
    short = build_routing_plan(
        trace.slice(0, 10), cluster.ring, cluster.replication
    )
    with pytest.raises(ConfigurationError, match="routing plan mismatch"):
        cluster.replay_compiled(trace, plan=short)
    # Same shard count, different ring parameters: a silent misroute if
    # the plan only recorded its shape.
    same_shape_other_seed = build_routing_plan(
        trace, HashRing(3, seed=99, virtual_nodes=8), 1
    )
    with pytest.raises(ConfigurationError, match="routing plan mismatch"):
        cluster.replay_compiled(trace, plan=same_shape_other_seed)
    other_vnodes = build_routing_plan(
        trace, HashRing(3, seed=5, virtual_nodes=16), 1
    )
    with pytest.raises(ConfigurationError, match="routing plan mismatch"):
        cluster.replay_compiled(trace, plan=other_vnodes)


def test_partitioned_unknown_app_still_rejected():
    trace = compile_trace([("ghost", "k", "get", 64)])
    with pytest.raises(ConfigurationError, match="unknown app"):
        fcfs_cluster(2).replay_compiled(trace)


def test_bad_replication_rejected():
    trace = compile_trace([("a", "k", "get", 64)])
    with pytest.raises(ConfigurationError, match="replication"):
        build_routing_plan(trace, HashRing(2), 0)
    # get_routing_plan must reject identically whether or not the cache
    # already holds the clamped-equivalent plan.
    cache = TraceCache(directory=None)
    get_routing_plan(trace, HashRing(2), 1, cache=cache)
    with pytest.raises(ConfigurationError, match="replication"):
        get_routing_plan(trace, HashRing(2), 0, cache=cache)


def test_effective_replication_single_definition():
    assert effective_replication(0, 4) == 1
    assert effective_replication(-3, 4) == 1
    assert effective_replication(2, 4) == 2
    assert effective_replication(9, 4) == 4
    assert effective_replication(1, 1) == 1


def test_plan_cache_key_uses_effective_replication():
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(10)])
    ring = HashRing(3, seed=0)
    # Over-replication clamps to the shard count: same plan, same key.
    assert plan_cache_key(trace, ring, 9) == plan_cache_key(trace, ring, 3)
    assert plan_cache_key(trace, ring, 2) != plan_cache_key(trace, ring, 3)


# ---------------------------------------------------------------------------
# Corrupt plan files: range/shape/dtype validation on load
# ---------------------------------------------------------------------------


def save_tampered_plan(trace, ring, path, **overrides):
    """Save a valid plan, then overwrite chosen fields with bad values."""
    plan = build_routing_plan(trace, ring, 2)
    for name, value in overrides.items():
        setattr(plan, name, value)
    return plan.save(path)


def test_load_rejects_out_of_range_shard_ids(tmp_path):
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(30)])
    ring = HashRing(4, seed=0)
    ids = build_routing_plan(trace, ring, 2).shard_ids.copy()
    ids[7] = 99  # corrupt: beyond [0, shards)
    path = save_tampered_plan(trace, ring, tmp_path / "hi.npz", shard_ids=ids)
    with pytest.raises(TraceFormatError, match="outside"):
        RoutingPlan.load(path)
    ids[7] = -1  # corrupt: negative
    path = save_tampered_plan(trace, ring, tmp_path / "lo.npz", shard_ids=ids)
    with pytest.raises(TraceFormatError, match="outside"):
        RoutingPlan.load(path)


def test_load_rejects_bad_dtype_shape_and_replication(tmp_path):
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(30)])
    ring = HashRing(4, seed=0)
    good = build_routing_plan(trace, ring, 2).shard_ids
    path = save_tampered_plan(
        trace, ring, tmp_path / "f.npz", shard_ids=good.astype(np.float64)
    )
    with pytest.raises(TraceFormatError, match="integer"):
        RoutingPlan.load(path)
    path = save_tampered_plan(
        trace, ring, tmp_path / "2d.npz", shard_ids=good.reshape(2, -1)
    )
    with pytest.raises(TraceFormatError, match="1-d"):
        RoutingPlan.load(path)
    # The replication=0-from-disk regression: silently clamping on load
    # would let a corrupt file disagree with every other consumer.
    path = save_tampered_plan(trace, ring, tmp_path / "r0.npz", replication=0)
    with pytest.raises(TraceFormatError, match="replication"):
        RoutingPlan.load(path)
    path = save_tampered_plan(trace, ring, tmp_path / "s0.npz", shards=0)
    with pytest.raises(TraceFormatError, match="shard"):
        RoutingPlan.load(path)


def test_corrupt_cached_plan_is_rebuilt_and_repaired(tmp_path):
    trace = compile_trace([("a", f"k{i}", "get", 64) for i in range(60)])
    ring = HashRing(4, seed=0)
    expected = build_routing_plan(trace, ring, 2)
    # Poison the on-disk entry with out-of-range shard ids under the
    # real cache key, then fetch through a cold cache so the load path
    # (not the memory level) sees the corruption.
    poisoner = TraceCache(directory=tmp_path)
    bad = build_routing_plan(trace, ring, 2)
    bad.shard_ids = bad.shard_ids.copy()
    bad.shard_ids[0] = 1000
    key = plan_cache_key(trace, ring, 2)
    poisoner.store_plan(key, bad)
    cold = TraceCache(directory=tmp_path)
    healed = get_routing_plan(trace, ring, 2, cache=cold)
    assert healed.shard_ids.tolist() == expected.shard_ids.tolist()
    # Same recovery path as the stale-entry branch: the corrupt file was
    # overwritten, so a third cache instance loads the repair directly.
    reloaded = TraceCache(directory=tmp_path).get_or_build_plan(
        key, lambda: None
    )
    assert reloaded.shard_ids.tolist() == expected.shard_ids.tolist()


# ---------------------------------------------------------------------------
# The bit-identity property: partitioned replay == per-request oracle
# ---------------------------------------------------------------------------


def counters(server):
    return {
        key: (c.get_hits, c.get_misses, c.sets, c.shadow_hits, c.evictions)
        for key, c in server.stats.by_app_class.items()
    }


requests_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b"]),
        st.integers(min_value=0, max_value=60).map(lambda i: f"k{i:02d}"),
        st.sampled_from(["get", "get", "get", "set", "delete"]),
        st.integers(min_value=1, max_value=4000),
    ),
    min_size=1,
    max_size=300,
)


@settings(max_examples=25, deadline=None)
@given(
    rows=requests_strategy,
    shards=st.integers(min_value=1, max_value=5),
    replication=st.integers(min_value=1, max_value=3),
    hash_seed=st.integers(min_value=0, max_value=2**32),
)
def test_partitioned_bit_identical_to_oracle(
    rows, shards, replication, hash_seed
):
    trace = compile_trace(rows)
    fast = fcfs_cluster(
        shards, replication, partitioned=True, seed=hash_seed, apps=("a", "b")
    )
    oracle = fcfs_cluster(
        shards, replication, partitioned=False, seed=hash_seed, apps=("a", "b")
    )
    fast_stats = fast.replay_compiled(trace)
    oracle_stats = oracle.replay_compiled(trace)
    assert (
        fast_stats.total.get_hits,
        fast_stats.total.get_misses,
        fast_stats.total.sets,
        fast_stats.total.evictions,
    ) == (
        oracle_stats.total.get_hits,
        oracle_stats.total.get_misses,
        oracle_stats.total.sets,
        oracle_stats.total.evictions,
    )
    for fast_shard, oracle_shard in zip(fast.servers, oracle.servers):
        assert counters(fast_shard) == counters(oracle_shard)


@pytest.mark.parametrize("replication", [1, 2])
def test_partitioned_epoch_path_bit_identical_to_oracle(replication):
    rows = []
    for i in range(2500):
        rows.append(
            (
                "a" if i % 3 else "b",
                f"k{(i * 7) % 90:02d}",
                ("get", "get", "set", "delete")[i % 4],
                64 + (i % 19) * 100,
            )
        )
    trace = compile_trace(rows)

    def with_rebalancer(partitioned):
        cluster = fcfs_cluster(
            4, replication, partitioned=partitioned, apps=("a", "b")
        )
        cluster.attach_rebalancer(
            Rebalancer(
                cluster,
                RebalanceConfig(
                    epoch_requests=400, credit_bytes=8192.0, policy="load"
                ),
                seed=0,
            )
        )
        return cluster

    fast, oracle = with_rebalancer(True), with_rebalancer(False)
    fast.replay_compiled(trace)
    oracle.replay_compiled(trace)
    for fast_shard, oracle_shard in zip(fast.servers, oracle.servers):
        assert counters(fast_shard) == counters(oracle_shard)
    # Same epochs, same transfers, same per-epoch budget timeline.
    assert fast.rebalancer.to_dict() == oracle.rebalancer.to_dict()
