"""Object-API batch parity: ``process_batch`` vs the per-request oracle.

``Cluster.process_batch`` is the serving hot path -- it must be
bit-identical to calling :meth:`Cluster.process` once per request, down
to per-shard per-(app, slab class) counters, packed outcome codes,
replica round-robin state and rebalance epoch barriers. A Hypothesis
property drives random request sequences (mixed ops, shared keys,
multiple tenants) through both paths on twin clusters, under
replication, live-set failover/miss-through flips between batches, and
rebalance epochs landing mid-batch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.engines import FirstComeFirstServeEngine
from repro.cache.slabs import SlabGeometry
from repro.cache.stats import pack_outcome
from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultInjector,
    FaultSchedule,
    RebalanceConfig,
    Rebalancer,
)
from repro.common.errors import CacheError, ConfigurationError
from repro.workloads.trace import Request

GEO = SlabGeometry.default()


def fcfs_factory(app):
    return lambda shard, share: FirstComeFirstServeEngine(app, share, GEO)


def build(shards=4, replication=1, budget=1 << 18, apps=("a", "b"), **kwargs):
    cluster = Cluster(
        ClusterConfig(shards=shards, replication=replication, **kwargs), GEO
    )
    for app in apps:
        cluster.add_app(app, budget, fcfs_factory(app))
    return cluster


def make_requests(spec):
    """``spec`` rows are (key_index, op, value_size, app_index)."""
    return [
        Request(
            time=float(i),
            app=("a", "b")[app_index],
            key=f"k{key_index:03d}",
            op=op,
            value_size=value_size,
        )
        for i, (key_index, op, value_size, app_index) in enumerate(spec)
    ]


def run_oracle(cluster, requests):
    codes = []
    for request in requests:
        outcome = cluster.process(request)
        codes.append(
            pack_outcome(
                hit=outcome.hit,
                slab_class=outcome.slab_class,
                shadow_hit=outcome.shadow_hit,
                evicted=outcome.evicted,
                dead=outcome.dead,
            )
        )
    return codes


def run_batch(cluster, requests):
    return cluster.process_batch(
        [r.key for r in requests],
        [r.op for r in requests],
        [r.value_size for r in requests],
        [r.app for r in requests],
        [r.key_size for r in requests],
    ).tolist()


def per_shard_snapshot(cluster):
    return [
        {
            key: (
                c.get_hits,
                c.get_misses,
                c.sets,
                c.shadow_hits,
                c.evictions,
                c.dead_requests,
            )
            for key, c in server.stats.by_app_class.items()
        }
        for server in cluster.servers
    ]


def assert_twin_state(oracle, batch):
    assert per_shard_snapshot(batch) == per_shard_snapshot(oracle)
    assert batch._spread == oracle._spread
    assert batch._object_requests == oracle._object_requests


REQUEST_SPECS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=24),  # key pool of 25
        st.sampled_from(["get", "set", "delete"]),
        st.integers(min_value=0, max_value=4096),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=1,
    max_size=200,
)


class TestBatchParity:
    @settings(max_examples=30, deadline=None)
    @given(
        spec=REQUEST_SPECS,
        shards=st.integers(min_value=1, max_value=4),
        replication=st.integers(min_value=1, max_value=3),
    )
    def test_bit_identical_to_per_request_oracle(
        self, spec, shards, replication
    ):
        requests = make_requests(spec)
        oracle = build(shards=shards, replication=replication)
        batch = build(shards=shards, replication=replication)
        assert run_batch(batch, requests) == run_oracle(oracle, requests)
        assert_twin_state(oracle, batch)

    @settings(max_examples=20, deadline=None)
    @given(
        spec=REQUEST_SPECS,
        epoch_requests=st.integers(min_value=1, max_value=37),
        split=st.integers(min_value=0, max_value=200),
    )
    def test_mid_batch_rebalance_epochs_match(
        self, spec, epoch_requests, split
    ):
        """Epochs land inside a batch exactly where the per-request
        counter puts them -- including when the batch starts partway
        into an epoch (the ``split`` point cuts the stream in two)."""
        requests = make_requests(spec)
        config = RebalanceConfig(
            epoch_requests=epoch_requests,
            credit_bytes=4096.0,
            policy="load",
        )
        oracle = build(shards=3)
        batch = build(shards=3)
        oracle.attach_rebalancer(Rebalancer(oracle, config, seed=0))
        batch.attach_rebalancer(Rebalancer(batch, config, seed=0))
        split = min(split, len(requests))
        oracle_codes = run_oracle(oracle, requests)
        batch_codes = run_batch(batch, requests[:split]) + run_batch(
            batch, requests[split:]
        )
        assert batch_codes == oracle_codes
        assert_twin_state(oracle, batch)
        assert (
            batch.rebalancer.to_dict()["epochs"]
            == oracle.rebalancer.to_dict()["epochs"]
        )
        assert (
            batch.rebalancer.budgets() == oracle.rebalancer.budgets()
        )

    @settings(max_examples=20, deadline=None)
    @given(
        spec=REQUEST_SPECS,
        policy=st.sampled_from(["failover", "miss-through"]),
        dead_shard=st.integers(min_value=0, max_value=3),
        flip_at=st.integers(min_value=0, max_value=200),
        replication=st.integers(min_value=1, max_value=2),
    )
    def test_live_set_failover_matches(
        self, spec, policy, dead_shard, flip_at, replication
    ):
        """A shard dies partway through the stream: ``failover`` reroutes
        around it, ``miss-through`` records tagged dead misses. The
        object API sees liveness flips between calls, so the batch path
        splits at the flip point like a server would."""
        requests = make_requests(spec)
        flip_at = min(flip_at, len(requests))
        schedule = FaultSchedule.from_dict({"policy": policy, "events": []})
        oracle = build(shards=4, replication=replication)
        batch = build(shards=4, replication=replication)
        oracle.attach_faults(FaultInjector(oracle, schedule))
        batch.attach_faults(FaultInjector(batch, schedule))

        def kill(cluster):
            cluster.fault_injector.live[dead_shard] = False
            cluster.fault_injector.live_version += 1

        oracle_codes = run_oracle(oracle, requests[:flip_at])
        kill(oracle)
        oracle_codes += run_oracle(oracle, requests[flip_at:])
        batch_codes = run_batch(batch, requests[:flip_at])
        kill(batch)
        batch_codes += run_batch(batch, requests[flip_at:])
        assert batch_codes == oracle_codes
        assert_twin_state(oracle, batch)

    def test_compiled_workload_stream_parity(self):
        """A realistic Zipf stream (shared keys, skewed popularity)
        through both paths, replication 2 -- the deterministic anchor
        backing the Hypothesis property."""
        from repro.sim import load_workload

        trace = load_workload(
            "zipf",
            scale=0.05,
            seed=0,
            apps=2,
            num_keys=500,
            requests_per_app=2_000,
        ).compiled
        requests = list(trace.iter_requests())[:3_000]
        apps = tuple(trace.app_table)
        oracle = build(shards=4, replication=2, apps=apps)
        batch = build(shards=4, replication=2, apps=apps)
        assert run_batch(batch, requests) == run_oracle(oracle, requests)
        assert_twin_state(oracle, batch)


class TestBatchInterface:
    def test_scalar_broadcast(self):
        cluster = build(shards=2, apps=("a",))
        codes = cluster.process_batch(
            ["x", "y", "x"], "get", 100, "a"
        )
        assert len(codes) == 3
        assert cluster.aggregate_stats().total.gets == 3

    def test_integer_op_codes_accepted(self):
        cluster = build(shards=2, apps=("a",))
        set_then_get = cluster.process_batch(
            ["x", "x"], [1, 0], [100, 100], "a"
        )
        assert set_then_get[1] & 1  # the GET after the SET hits

    def test_unknown_app_fails_fast_without_mutating(self):
        cluster = build(shards=2)
        with pytest.raises(ConfigurationError, match="unknown app"):
            cluster.process_batch(["x", "y"], "get", 100, ["a", "ghost"])
        assert cluster.aggregate_stats().total.gets == 0

    def test_unknown_op_rejected(self):
        cluster = build(shards=2)
        with pytest.raises(ConfigurationError, match="unknown op"):
            cluster.process_batch(["x"], "put", 100, "a")
        with pytest.raises(ConfigurationError, match="unknown op"):
            cluster.process_batch(["x"], [7], 100, "a")

    def test_length_mismatches_rejected(self):
        cluster = build(shards=2)
        with pytest.raises(ConfigurationError, match="op"):
            cluster.process_batch(["x", "y"], ["get"], 100, "a")
        with pytest.raises(ConfigurationError, match="app"):
            cluster.process_batch(["x", "y"], "get", 100, ["a"])
        with pytest.raises(ConfigurationError, match="value size"):
            cluster.process_batch(["x", "y"], "get", [100], "a")

    def test_oversized_item_raises_before_processing(self):
        cluster = build(shards=2)
        with pytest.raises(CacheError, match="exceeds largest chunk"):
            cluster.process_batch(
                ["ok", "huge"], "set", [100, 1 << 21], "a"
            )
        assert cluster.aggregate_stats().total.sets == 0

    def test_negative_value_size_rejected(self):
        cluster = build(shards=2)
        with pytest.raises(ConfigurationError, match=">= 0"):
            cluster.process_batch(["x"], "get", -1, "a")


class TestRouteMemoization:
    def test_route_hashes_each_key_once(self, monkeypatch):
        cluster = build(shards=4)
        calls = []
        original = cluster.ring.position_for

        def counting(key):
            calls.append(key)
            return original(key)

        monkeypatch.setattr(cluster.ring, "position_for", counting)
        first = [cluster.route("hot") for _ in range(5)]
        assert len(set(first)) == 1
        assert calls == ["hot"]

    def test_route_matches_ring_walk(self):
        single = build(shards=5, replication=1)
        for i in range(40):
            key = f"k{i}"
            assert single.route(key) == single.ring.shard_for(key)
        spread = build(shards=5, replication=3)
        for i in range(10):
            key = f"r{i}"
            replicas = spread.ring.shards_for(key, 3)
            seen = [spread.route(key) for _ in range(6)]
            assert seen == (replicas * 2)

    def test_batch_reuses_and_fills_the_position_memo(self):
        cluster = build(shards=4, apps=("a",))
        cluster.route("x")  # memoized by the scalar path
        cluster.process_batch(["x", "y", "z"], "get", 100, "a")
        assert set(cluster._key_positions) == {"x", "y", "z"}
        assert cluster._key_positions["y"] == cluster.ring.position_for("y")

    def test_failover_columns_memoized_per_live_set(self):
        schedule = FaultSchedule.from_dict(
            {"policy": "failover", "events": []}
        )
        cluster = build(shards=4)
        cluster.attach_faults(FaultInjector(cluster, schedule))
        key = "k"
        healthy = cluster.route(key)
        cluster.fault_injector.live[healthy] = False
        rerouted = cluster.route(key)
        assert rerouted != healthy
        assert rerouted == cluster.ring.shards_for_live(
            key, 1, cluster.fault_injector.live
        )[0]
        # Both live sets keep their columns; recovery reuses the first.
        assert len(cluster._successor_columns) == 2
        cluster.fault_injector.live[healthy] = True
        assert cluster.route(key) == healthy
        assert len(cluster._successor_columns) == 2
