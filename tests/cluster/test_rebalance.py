"""Invariants of the epoch-driven cross-shard rebalancer.

Three properties must hold no matter how the knobs are turned: the
cluster's total budget is conserved across every epoch (credits move,
bytes are never created or destroyed), no shard ever drops below its
``min_shard_fraction`` floor, and a fixed seed yields a bit-identical
epoch timeline. Plus the config surface: validation, the
cluster-requires-rebalance coupling, sweep reachability, and the
shadow-policy/shadow-scheme interaction.
"""

from __future__ import annotations

import pytest

from repro.cluster import RebalanceConfig, Rebalancer
from repro.common.errors import ConfigurationError
from repro.sim import Scenario, Sweep, run_scenario

SHARDS = 4
MIN_FRACTION = 0.1

BASE = Scenario(
    scheme="hill",
    workload="flash-crowd",
    scale=0.1,
    seed=0,
    workload_params={
        "apps": 2,
        "num_keys": 8_000,
        "requests_per_app": 20_000,
        "crowd_fraction": 0.7,
    },
    cluster={"shards": SHARDS, "virtual_nodes": 4},
)

REBALANCE = {
    "epoch_requests": 200,
    "credit_bytes": 8192.0,
    "min_shard_fraction": MIN_FRACTION,
    "policy": "shadow",
}


def rebalanced(**overrides):
    block = dict(REBALANCE)
    block.update(overrides)
    return run_scenario(BASE.replace(rebalance=block))


# ---------------------------------------------------------------------------
# Config surface
# ---------------------------------------------------------------------------


def test_config_defaults_round_trip():
    config = RebalanceConfig.from_dict({"policy": "load"})
    assert config.enabled
    assert RebalanceConfig.from_dict(config.to_dict()) == config


@pytest.mark.parametrize(
    "payload, match",
    [
        ({"epoch_requests": -1}, "epoch_requests"),
        ({"credit_bytes": 0}, "credit_bytes"),
        ({"min_shard_fraction": 1.0}, "min_shard_fraction"),
        ({"min_shard_fraction": -0.1}, "min_shard_fraction"),
        ({"policy": "psychic"}, "policy"),
        ({"epochs": 5}, "unknown rebalance fields"),
        ({"credit_bytes": "lots"}, "bad rebalance block"),
    ],
)
def test_config_rejects_bad_blocks(payload, match):
    with pytest.raises(ConfigurationError, match=match):
        RebalanceConfig.from_dict(payload)


def test_scenario_rejects_rebalance_without_cluster():
    with pytest.raises(ConfigurationError, match="cluster"):
        Scenario(workload="zipf", rebalance={"epoch_requests": 100})


def test_rebalancer_rejects_disabled_config():
    from repro.cluster import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(shards=2))
    with pytest.raises(ConfigurationError, match="disabled"):
        Rebalancer(cluster, RebalanceConfig(epoch_requests=0))


def test_scenario_normalizes_and_labels_rebalance():
    scenario = BASE.replace(rebalance={"epoch_requests": 100})
    assert scenario.rebalance["policy"] == "shadow"  # default filled in
    assert scenario.rebalance["min_shard_fraction"] == MIN_FRACTION
    assert scenario.label().endswith("/rebal-shadow")
    clone = Scenario.from_dict(scenario.to_dict())
    assert clone == scenario


# ---------------------------------------------------------------------------
# Invariants over the replay
# ---------------------------------------------------------------------------


def test_total_budget_conserved_across_every_epoch():
    result = rebalanced()
    rebalance = result.cluster_report["rebalance"]
    total = sum(result.budgets.values())
    timeline = rebalance["timeline"]
    assert timeline["times"]  # at least the epoch-0 baseline
    for i in range(len(timeline["times"])):
        epoch_total = sum(
            timeline["series"][f"shard{s}"][i] for s in range(SHARDS)
        )
        assert epoch_total == pytest.approx(total, rel=1e-9)
    assert sum(rebalance["shard_budgets"]) == pytest.approx(total, rel=1e-9)


def test_no_shard_ever_drops_below_the_floor():
    result = rebalanced(credit_bytes=65536.0)  # coarse credits press hard
    rebalance = result.cluster_report["rebalance"]
    total = sum(result.budgets.values())
    floor = MIN_FRACTION * total / SHARDS
    timeline = rebalance["timeline"]
    for s in range(SHARDS):
        low = min(timeline["series"][f"shard{s}"])
        assert low >= floor * (1.0 - 1e-9)
    assert rebalance["transfers"] > 0  # the floor was actually contested


def test_zero_floor_drained_shard_regrows_without_destroying_credit():
    # Regression: with min_shard_fraction=0 a donor can be drained to
    # exactly 0 bytes. If that shard later wins an epoch, the grow must
    # still apply (an early version silently dropped it after the
    # victim had already been shrunk, destroying the credit).
    from repro.cache.engines import FirstComeFirstServeEngine
    from repro.cache.slabs import SlabGeometry
    from repro.cluster import (
        Cluster,
        ClusterConfig,
        RebalanceConfig,
        Rebalancer,
    )
    from repro.workloads.compiled import CompiledTrace
    from repro.workloads.trace import Request

    geometry = SlabGeometry.default()
    cluster = Cluster(ClusterConfig(shards=2), geometry)
    cluster.add_app(
        "a",
        65536.0,
        lambda shard, share: FirstComeFirstServeEngine(
            "a", share, geometry
        ),
    )
    # A credit the size of a whole even share drains the donor in one
    # transfer once the floor is zero.
    cluster.attach_rebalancer(
        Rebalancer(
            cluster,
            RebalanceConfig(
                epoch_requests=100,
                credit_bytes=32768.0,
                min_shard_fraction=0.0,
                policy="load",
            ),
        )
    )
    hot = {shard: None for shard in range(2)}
    probe = 0
    while any(key is None for key in hot.values()):
        key = f"k{probe}"
        probe += 1
        shard = cluster.ring.shard_for(key)
        if hot[shard] is None:
            hot[shard] = key
    # Epoch 1: shard 0 wins and drains shard 1 to 0; epoch 2: shard 1
    # wins from a 0-byte budget and must get the credit back.
    requests = [
        Request(time=float(i), app="a", key=hot[0], op="get", value_size=64)
        for i in range(100)
    ] + [
        Request(
            time=100.0 + i, app="a", key=hot[1], op="get", value_size=64
        )
        for i in range(100)
    ]
    cluster.replay_compiled(CompiledTrace.compile(requests, geometry))
    rebalance = cluster.report().to_dict()["rebalance"]
    timeline = rebalance["timeline"]
    for i in range(len(timeline["times"])):
        epoch_total = sum(
            timeline["series"][f"shard{s}"][i] for s in range(2)
        )
        assert epoch_total == pytest.approx(65536.0, rel=1e-9)
    assert rebalance["transfers"] == 2
    # The drained shard is back above zero after winning.
    assert timeline["series"]["shard1"][1] == 0.0
    assert timeline["series"]["shard1"][2] > 0.0


def test_fixed_seed_yields_identical_epoch_timeline():
    first = rebalanced()
    second = rebalanced()
    assert (
        first.cluster_report["rebalance"]
        == second.cluster_report["rebalance"]
    )
    assert first.hit_rates == second.hit_rates  # exact float equality
    assert first.overall_hit_rate == second.overall_hit_rate


def test_epoch_count_matches_trace_length():
    result = rebalanced()
    rebalance = result.cluster_report["rebalance"]
    assert rebalance["epochs"] == result.requests // REBALANCE[
        "epoch_requests"
    ]
    # Timeline: epoch-0 baseline plus one sample per epoch.
    assert len(rebalance["timeline"]["times"]) == rebalance["epochs"] + 1


def test_hot_shard_budget_grows_and_hit_rate_beats_static():
    static = run_scenario(BASE)
    online = rebalanced()
    rebalance = online.cluster_report["rebalance"]
    even_share = sum(online.budgets.values()) / SHARDS
    assert max(rebalance["shard_budgets"]) > 1.5 * even_share
    assert online.overall_hit_rate > static.overall_hit_rate


def test_shadow_policy_is_inert_without_shadow_queues():
    # FCFS engines never report shadow hits, so the shadow signal stays
    # flat and no budget moves -- but the replay (and its timeline) still
    # runs.
    result = run_scenario(
        BASE.replace(scheme="default", rebalance=dict(REBALANCE))
    )
    rebalance = result.cluster_report["rebalance"]
    assert rebalance["transfers"] == 0
    assert rebalance["epochs"] > 0
    budgets = rebalance["shard_budgets"]
    assert budgets == [budgets[0]] * SHARDS  # still the even split


def test_one_shard_cluster_rebalances_to_nothing():
    result = run_scenario(
        BASE.replace(
            cluster={"shards": 1}, rebalance=dict(REBALANCE)
        )
    )
    rebalance = result.cluster_report["rebalance"]
    assert rebalance["transfers"] == 0  # never a donor shard
    assert rebalance["epochs"] > 0


def test_load_policy_moves_budget_toward_the_loaded_shard():
    result = rebalanced(policy="load")
    report = result.cluster_report
    rebalance = report["rebalance"]
    assert rebalance["transfers"] > 0
    loads = {
        load["shard"]: load["requests"] for load in report["shard_loads"]
    }
    busiest = max(loads, key=loads.get)
    budgets = rebalance["shard_budgets"]
    assert budgets[busiest] == max(budgets)


# ---------------------------------------------------------------------------
# Sweep and serialization reach
# ---------------------------------------------------------------------------


def test_sweep_axis_over_epoch_requests():
    sweep = Sweep(
        base=BASE.replace(rebalance=dict(REBALANCE)),
        axes={"rebalance.epoch_requests": [0, 400]},
    )
    grid = sweep.scenarios()
    assert [s.rebalance["epoch_requests"] for s in grid] == [0, 400]
    static_run, online = sweep.run().results
    assert static_run.cluster_report["rebalance"] is None
    assert online.cluster_report["rebalance"]["transfers"] > 0


def test_result_round_trips_rebalance_report():
    import json

    from repro.sim import ScenarioResult

    result = rebalanced()
    clone = ScenarioResult.from_dict(json.loads(result.to_json()))
    assert clone.cluster_report == result.cluster_report
    assert clone.scenario.rebalance == result.scenario.rebalance
    rendered = result.render()
    assert "rebalance (shadow)" in rendered
    assert "shard budgets now" in rendered
