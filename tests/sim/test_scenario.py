"""Scenario / ScenarioResult serialization and validation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.sim import Scenario, ScenarioResult

APP_NAMES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=12
)

FINITE_BUDGET = st.floats(
    min_value=1.0, max_value=1e12, allow_nan=False, allow_infinity=False
)

JSON_SCALAR = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)


def scenarios() -> st.SearchStrategy[Scenario]:
    plans = st.one_of(
        st.none(),
        st.just("solver"),
        st.dictionaries(
            APP_NAMES,
            st.dictionaries(
                st.integers(min_value=0, max_value=15),
                FINITE_BUDGET,
                max_size=4,
            ),
            max_size=3,
        ),
    )
    return st.builds(
        Scenario,
        scheme=st.sampled_from(
            ["default", "planned", "lsm", "hill", "cliffhanger"]
        ),
        workload=st.sampled_from(["memcachier", "zipf", "facebook"]),
        policy=st.sampled_from(["lru", "arc", "facebook"]),
        scale=st.floats(
            min_value=0.001, max_value=4.0, allow_nan=False, allow_infinity=False
        ),
        seed=st.integers(min_value=0, max_value=2**31),
        apps=st.one_of(st.none(), st.lists(APP_NAMES, max_size=4)),
        budgets=st.one_of(
            st.none(), st.dictionaries(APP_NAMES, FINITE_BUDGET, max_size=4)
        ),
        plans=plans,
        workload_params=st.dictionaries(APP_NAMES, JSON_SCALAR, max_size=4),
        engine_overrides=st.dictionaries(APP_NAMES, JSON_SCALAR, max_size=4),
        cluster=st.one_of(
            st.none(),
            st.fixed_dictionaries(
                {},
                optional={
                    "shards": st.integers(min_value=1, max_value=32),
                    "hash_seed": st.integers(min_value=0, max_value=2**31),
                    "replication": st.integers(min_value=1, max_value=8),
                    "virtual_nodes": st.integers(min_value=1, max_value=128),
                },
            ),
        ),
        name=st.one_of(st.none(), st.text(max_size=20)),
    )


@settings(max_examples=100, deadline=None)
@given(scenarios())
def test_scenario_json_roundtrip(scenario):
    """to_json -> from_json reproduces the scenario exactly, including
    integer slab-class plan keys that JSON stringifies."""
    assert Scenario.from_json(scenario.to_json()) == scenario


@settings(max_examples=50, deadline=None)
@given(scenarios())
def test_scenario_dict_roundtrip_is_stable(scenario):
    once = Scenario.from_dict(scenario.to_dict())
    twice = Scenario.from_dict(once.to_dict())
    assert once == twice == scenario


def test_unknown_fields_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario fields"):
        Scenario.from_dict({"scheme": "default", "wokload": "zipf"})


def test_bad_scale_rejected():
    with pytest.raises(ConfigurationError, match="scale"):
        Scenario(scale=0.0)
    with pytest.raises(ConfigurationError, match="scale"):
        Scenario.from_dict({"scale": -1.0})


def test_bad_plans_string_rejected():
    with pytest.raises(ConfigurationError, match="plans"):
        Scenario(plans="sovler")


def test_cluster_block_normalized_with_defaults():
    scenario = Scenario(cluster={"shards": 4})
    assert scenario.cluster == {
        "shards": 4,
        "hash_seed": 0,
        "replication": 1,
        "virtual_nodes": 64,
        "partitioned_replay": True,
        "parallel_workers": 0,
    }
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    assert "4shards" in scenario.label()


def test_bad_cluster_blocks_rejected():
    with pytest.raises(ConfigurationError, match="unknown cluster"):
        Scenario(cluster={"shard": 4})
    with pytest.raises(ConfigurationError, match="shard"):
        Scenario(cluster={"shards": 0})
    with pytest.raises(ConfigurationError, match="cluster"):
        Scenario.from_dict({"cluster": "four"})


def test_non_object_spec_rejected():
    with pytest.raises(ConfigurationError, match="object"):
        Scenario.from_dict(["default"])
    with pytest.raises(ConfigurationError, match="JSON"):
        Scenario.from_json("not json{")


def test_replace_returns_modified_copy():
    base = Scenario(scheme="default", scale=0.1)
    changed = base.replace(scheme="cliffhanger", seed=7)
    assert changed.scheme == "cliffhanger"
    assert changed.seed == 7
    assert changed.scale == 0.1
    assert base.scheme == "default"


def test_plan_keys_coerced_to_int():
    scenario = Scenario.from_dict(
        {"scheme": "planned", "plans": {"app01": {"3": 4096.0}}}
    )
    assert scenario.plans == {"app01": {3: 4096.0}}


def test_scenario_result_roundtrip():
    result = ScenarioResult(
        scenario=Scenario(scheme="cliffhanger", scale=0.05),
        hit_rates={"app01": 0.5},
        overall_hit_rate=0.5,
        requests=100,
        gets=90,
        elapsed_seconds=0.25,
        requests_per_sec=400.0,
        budgets={"app01": 1 << 20},
        miss_reductions={"app01": 0.1},
    )
    assert ScenarioResult.from_dict(result.to_dict()) == result


def test_miss_reductions_vs():
    def make(rates):
        return ScenarioResult(
            scenario=Scenario(),
            hit_rates=rates,
            overall_hit_rate=0.0,
            requests=0,
            gets=0,
            elapsed_seconds=1.0,
            requests_per_sec=0.0,
            budgets={},
        )

    baseline = make({"a": 0.5, "b": 1.0})
    better = make({"a": 0.75, "b": 1.0, "c": 0.9})
    reductions = better.miss_reductions_vs(baseline)
    assert reductions["a"] == pytest.approx(0.5)
    assert reductions["b"] == 0.0  # no baseline misses to remove
    assert "c" not in reductions  # not in the baseline
