"""Dynamic workloads: phase shifts, flash crowds, registry plumbing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim import list_workloads, load_workload
from repro.workloads.generators import (
    FlashCrowdStream,
    PhasedZipfStream,
    ZipfPhase,
    ZipfStream,
)
from repro.workloads.sizes import FixedSize

SIZE = FixedSize(256)


def key_index(key: str) -> int:
    return int(key.rsplit(":", 1)[1])


class TestPhasedZipfStream:
    def two_phase(self, seed=0):
        return PhasedZipfStream(
            app="a",
            phases=(
                ZipfPhase(0.0, alpha=1.0, num_keys=500),
                ZipfPhase(0.5, alpha=0.6, num_keys=500, key_offset=500),
            ),
            size_model=SIZE,
            seed=seed,
        )

    def test_working_set_shifts_at_the_offset(self):
        requests = list(self.two_phase().generate(2000, 3600.0))
        first = {key_index(r.key) for r in requests[:1000]}
        second = {key_index(r.key) for r in requests[1000:]}
        assert max(first) < 500
        assert min(second) >= 500

    def test_deterministic_given_seed(self):
        a = [r.key for r in self.two_phase().generate(1000, 3600.0)]
        b = [r.key for r in self.two_phase().generate(1000, 3600.0)]
        c = [r.key for r in self.two_phase(seed=1).generate(1000, 3600.0)]
        assert a == b
        assert a != c

    def test_single_phase_degenerates_to_zipf_universe(self):
        stream = PhasedZipfStream(
            app="a",
            phases=(ZipfPhase(0.0, alpha=1.0, num_keys=100),),
            size_model=SIZE,
        )
        indices = {key_index(r.key) for r in stream.generate(2000, 3600.0)}
        assert indices <= set(range(100))

    def test_bad_phase_lists_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one phase"):
            PhasedZipfStream(app="a", phases=(), size_model=SIZE)
        with pytest.raises(ConfigurationError, match="increasing"):
            PhasedZipfStream(
                app="a",
                phases=(
                    ZipfPhase(0.5, 1.0, 100),
                    ZipfPhase(0.5, 0.8, 100),
                ),
                size_model=SIZE,
            )
        with pytest.raises(ConfigurationError, match="start at 0.0"):
            PhasedZipfStream(
                app="a",
                phases=(ZipfPhase(0.2, 1.0, 100),),
                size_model=SIZE,
            )
        with pytest.raises(ConfigurationError):
            ZipfPhase(1.5, 1.0, 100)


class TestFlashCrowdStream:
    def crowd(self, **kwargs):
        base = ZipfStream(
            app="a", num_keys=1000, alpha=1.0, size_model=SIZE, seed=0
        )
        defaults = dict(
            app="a",
            base=base,
            size_model=SIZE,
            crowd_keys=4,
            crowd_fraction=1.0,
            crowd_start=0.4,
            crowd_duration=0.2,
            seed=0,
        )
        defaults.update(kwargs)
        return FlashCrowdStream(**defaults)

    def test_crowd_confined_to_its_window(self):
        requests = list(self.crowd().generate(1000, 3600.0))
        flash = [
            i for i, r in enumerate(requests) if ":flash:" in r.key
        ]
        assert flash, "crowd never fired"
        assert min(flash) >= 390  # window starts at fraction 0.4
        assert max(flash) <= 610  # and ends at 0.6
        # With fraction 1.0 the window is all crowd.
        assert len(flash) >= 0.19 * 1000

    def test_crowd_uses_a_tiny_key_set(self):
        requests = list(self.crowd().generate(1000, 3600.0))
        crowd_keys = {r.key for r in requests if ":flash:" in r.key}
        assert len(crowd_keys) <= 4

    def test_zero_fraction_passes_base_through(self):
        requests = list(self.crowd(crowd_fraction=0.0).generate(500, 3600.0))
        assert all(":flash:" not in r.key for r in requests)

    def test_bad_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            self.crowd(crowd_start=0.9, crowd_duration=0.2)
        with pytest.raises(ConfigurationError):
            self.crowd(crowd_fraction=1.5)
        with pytest.raises(ConfigurationError):
            self.crowd(crowd_keys=0)


class TestRegisteredWorkloads:
    def test_both_workloads_registered(self):
        names = list_workloads()
        assert "zipf-phases" in names
        assert "flash-crowd" in names

    def test_zipf_phases_loads_and_compiles(self):
        trace = load_workload(
            "zipf-phases",
            scale=0.1,
            seed=0,
            apps=1,
            num_keys=2000,
            requests_per_app=5000,
        )
        assert trace.app_names == ["phased01"]
        assert len(trace.compiled) == 500
        # Default phases shift to a disjoint universe halfway: the two
        # halves of the stream share (almost) no keys.
        keys = trace.compiled.keys
        first, second = set(keys[:250]), set(keys[250:])
        assert not first & second

    def test_disjoint_phases_stay_disjoint_at_tiny_scales(self):
        """Regression: the per-phase >=50-key floor used to apply to
        num_keys but not key_offset, so disjoint phase lists silently
        overlapped once scale pushed a universe below 50 keys."""
        trace = load_workload(
            "zipf-phases",
            scale=0.001,
            seed=0,
            apps=1,
            num_keys=40_000,
            requests_per_app=500_000,
        )
        keys = trace.compiled.keys
        half = len(keys) // 2
        assert not set(keys[:half]) & set(keys[half:])

    def test_phase_offsets_scale_with_the_trace(self):
        full = load_workload(
            "zipf-phases", scale=1.0, seed=0, apps=1,
            num_keys=1000, requests_per_app=5000,
        )
        small = load_workload(
            "zipf-phases", scale=0.5, seed=0, apps=1,
            num_keys=1000, requests_per_app=5000,
        )
        # Disjointness survives scaling (offset scales with num_keys).
        for trace in (full, small):
            keys = trace.compiled.keys
            half = len(keys) // 2
            assert not set(keys[:half]) & set(keys[half:])

    def test_flash_crowd_loads_and_compiles(self):
        trace = load_workload(
            "flash-crowd",
            scale=0.1,
            seed=0,
            apps=2,
            num_keys=2000,
            requests_per_app=5000,
            crowd_fraction=0.9,
        )
        assert trace.app_names == ["flash01", "flash02"]
        assert len(trace.compiled) == 1000
        assert any(":flash:" in key for key in trace.compiled.keys)

    def test_unknown_params_rejected(self):
        with pytest.raises(ConfigurationError, match="zipf-phases"):
            load_workload("zipf-phases", scale=0.1, seed=0, zipf_alpha=2.0)
        with pytest.raises(ConfigurationError, match="flash-crowd"):
            load_workload("flash-crowd", scale=0.1, seed=0, crowd=1)

    def test_bad_phase_specs_rejected(self):
        with pytest.raises(ConfigurationError, match="missing 'at'"):
            load_workload(
                "zipf-phases", scale=0.1, seed=0, apps=1,
                phases=[{"alpha": 1.0}],
            )
        with pytest.raises(ConfigurationError, match="unknown phase"):
            load_workload(
                "zipf-phases", scale=0.1, seed=0, apps=1,
                phases=[{"at": 0.0, "exponent": 1.0}],
            )
        with pytest.raises(ConfigurationError, match="non-empty list"):
            load_workload(
                "zipf-phases", scale=0.1, seed=0, apps=1, phases=[],
            )
