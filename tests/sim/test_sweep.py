"""Sweep grid expansion and execution (serial and parallel)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.sim import Scenario, Sweep, run_sweep

TINY_ZIPF = {
    "apps": 2,
    "num_keys": 800,
    "requests_per_app": 6_000,
}


def tiny_sweep(axes=None) -> Sweep:
    return Sweep(
        base=Scenario(workload="zipf", scale=0.1, workload_params=TINY_ZIPF),
        axes=axes
        or {
            "scheme": ["default", "cliffhanger"],
            "seed": [0, 1],
        },
    )


def test_grid_expansion_order_and_names():
    sweep = tiny_sweep()
    grid = sweep.scenarios()
    assert len(sweep) == len(grid) == 4
    # First axis varies slowest, like nested loops.
    assert [(s.scheme, s.seed) for s in grid] == [
        ("default", 0),
        ("default", 1),
        ("cliffhanger", 0),
        ("cliffhanger", 1),
    ]
    assert grid[0].name == "scheme=default,seed=0"
    # Expansion is deterministic.
    assert grid == sweep.scenarios()


def test_dotted_axes_reach_nested_fields():
    sweep = tiny_sweep(
        axes={
            "workload_params.num_keys": [500, 1000],
            "engine_overrides.credit_bytes": [1024.0],
            "budgets.zipf01": [64 * 1024.0],
        }
    )
    grid = sweep.scenarios()
    assert len(grid) == 2
    assert grid[0].workload_params["num_keys"] == 500
    assert grid[1].workload_params["num_keys"] == 1000
    for scenario in grid:
        assert scenario.engine_overrides == {"credit_bytes": 1024.0}
        assert scenario.budgets == {"zipf01": 64 * 1024.0}
        # The base's other workload params survive the axis write.
        assert scenario.workload_params["requests_per_app"] == 6_000


def test_bad_axes_rejected():
    with pytest.raises(ConfigurationError, match="list of values"):
        Sweep(base=Scenario(), axes={"scheme": "default"})
    with pytest.raises(ConfigurationError, match="no values"):
        Sweep(base=Scenario(), axes={"scheme": []})
    with pytest.raises(ConfigurationError, match="non-dict"):
        Sweep(
            base=Scenario(), axes={"scheme.nested": ["x"]}
        ).scenarios()


def test_serial_run_results_in_grid_order():
    sweep = tiny_sweep()
    outcome = sweep.run()
    assert outcome.workers == 1
    assert len(outcome) == 4
    labels = [r.scenario.name for r in outcome]
    assert labels == [s.name for s in sweep.scenarios()]
    assert outcome.total_requests == sum(r.requests for r in outcome)
    assert outcome.elapsed_seconds > 0


def test_parallel_results_identical_to_serial():
    """Worker processes must reproduce the serial results bit for bit,
    in the same deterministic order."""
    sweep = tiny_sweep()
    serial = sweep.run()
    parallel = sweep.run(workers=2)
    assert parallel.workers == 2
    assert [r.scenario for r in parallel] == [r.scenario for r in serial]
    assert [r.hit_rates for r in parallel] == [r.hit_rates for r in serial]
    assert [r.requests for r in parallel] == [r.requests for r in serial]


def test_spawn_workers_identical_to_serial(tmp_path, monkeypatch):
    """The pool pins an explicit mp context: under spawn, workers
    re-import everything yet must attach to the parent's trace-cache
    directory (not re-read the environment) and reproduce the serial
    results bit for bit."""
    from repro.workloads import compiled

    monkeypatch.setattr(
        compiled.GLOBAL_TRACE_CACHE, "directory", tmp_path
    )
    # Make the env disagree with the parent's configured directory so an
    # env-re-reading spawn worker would provably diverge.
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    sweep = tiny_sweep(axes={"seed": [0, 1]})
    serial = sweep.run()
    spawned = sweep.run(workers=2, start_method="spawn")
    assert spawned.workers == 2
    assert [r.scenario for r in spawned] == [r.scenario for r in serial]
    assert [r.hit_rates for r in spawned] == [r.hit_rates for r in serial]
    assert [r.requests for r in spawned] == [r.requests for r in serial]
    # The workers shared the parent's on-disk store: the compiles they
    # wrote landed in tmp_path, not wherever the env pointed.
    assert any(tmp_path.iterdir())


def test_bad_start_method_rejected():
    from repro.common.mp import get_mp_context

    with pytest.raises(ConfigurationError, match="start method"):
        get_mp_context("threads")


def test_run_sweep_spec_roundtrip():
    spec = {
        "base": {
            "workload": "zipf",
            "scale": 0.1,
            "workload_params": TINY_ZIPF,
        },
        "axes": {"scheme": ["default", "lsm"]},
        "workers": 1,
    }
    outcome = run_sweep(spec)
    assert len(outcome) == 2
    assert {r.scenario.scheme for r in outcome} == {"default", "lsm"}
    rendered = outcome.render()
    assert "scheme=default" in rendered
    assert "2 scenarios" in rendered


def test_sweep_spec_unknown_fields_rejected():
    with pytest.raises(ConfigurationError, match="unknown sweep fields"):
        Sweep.from_dict({"base": {}, "axis": {}})


def test_spec_workers_key_is_wired_through():
    """Regression: from_dict whitelisted 'workers' but silently dropped
    it, so CLI sweep specs always ran serially."""
    spec = {
        "base": {
            "workload": "zipf",
            "scale": 0.1,
            "workload_params": TINY_ZIPF,
        },
        "axes": {"seed": [0, 1]},
        "workers": 2,
    }
    sweep = Sweep.from_dict(spec)
    assert sweep.workers == 2
    # run() defaults to the spec's workers (no speedup assert: the
    # container may have a single CPU)...
    outcome = sweep.run()
    assert outcome.workers == 2
    # ...and an explicit argument still overrides the spec.
    assert sweep.run(workers=1).workers == 1
    assert sweep.to_dict()["workers"] == 2


def test_bad_workers_rejected():
    with pytest.raises(ConfigurationError, match="workers"):
        Sweep.from_dict({"base": {}, "workers": 0})
    with pytest.raises(ConfigurationError, match="workers"):
        Sweep.from_dict({"base": {}, "workers": "four"})
