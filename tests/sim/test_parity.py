"""Legacy-path parity: the Scenario port must not move a single bit.

Rebuilds the fig6 and tab4 tables through the pre-redesign low-level
path -- direct engine construction, ``CacheServer.replay_compiled``,
explicit solver plans -- and asserts the rows match the Scenario-ported
runners exactly (not approximately) at seed 0.
"""

from __future__ import annotations

from repro.cache.server import CacheServer
from repro.experiments import fig6_cliffhanger, table4_combined
from repro.experiments.common import load_trace, make_engine, miss_reduction
from repro.sim import GEOMETRY, solver_plan_for_app

SCALE_FIG6 = 0.012
SCALE_TAB4 = 0.03
SEED = 0


def _legacy_replay(trace, scheme, plans=None, budgets=None, seed=0):
    """What replay_apps did before the Scenario API existed."""
    server = CacheServer(GEOMETRY)
    for app in trace.app_names:
        budget = budgets[app] if budgets else trace.reservations[app]
        server.add_app(
            make_engine(
                scheme,
                app,
                budget,
                scale=trace.scale,
                seed=seed,
                plan=plans.get(app) if plans else None,
            )
        )
    server.replay_compiled(trace.compiled)
    return server.stats


def test_fig6_rows_bit_identical_to_legacy_path():
    apps = [3, 9, 19]
    trace = load_trace(scale=SCALE_FIG6, seed=SEED, apps=apps)
    names = trace.app_names

    default_stats = _legacy_replay(trace, "default")
    plans = {app: solver_plan_for_app(trace, app) for app in names}
    solver_stats = _legacy_replay(trace, "planned", plans=plans)
    cliffhanger_stats = _legacy_replay(trace, "cliffhanger", seed=SEED)

    legacy_rows = []
    for app in names:
        base = default_stats.app_hit_rate(app)
        cliff = cliffhanger_stats.app_hit_rate(app)
        legacy_rows.append(
            [
                app,
                "*" if trace.specs[app].has_cliff else "",
                base,
                solver_stats.app_hit_rate(app),
                cliff,
                miss_reduction(base, cliff),
            ]
        )

    ported = fig6_cliffhanger.run(scale=SCALE_FIG6, seed=SEED, apps=apps)
    assert ported.rows == legacy_rows  # exact float equality


def test_tab4_rows_bit_identical_to_legacy_path():
    trace = load_trace(scale=SCALE_TAB4, seed=SEED, apps=[19])
    app = "app19"
    plan = table4_combined.pinned_plan(trace, app)
    total_budget = sum(plan.values())
    budgets = {app: total_budget}

    per_scheme = {}
    for scheme, _label in table4_combined.SCHEMES:
        per_scheme[scheme] = _legacy_replay(
            trace,
            scheme,
            plans={app: plan} if scheme == "planned" else None,
            budgets=budgets,
            seed=SEED,
        )

    legacy_rows = []
    for class_index in sorted(plan):
        row = [
            class_index,
            int(plan[class_index] / GEOMETRY.chunk_size(class_index)),
        ]
        for scheme, _label in table4_combined.SCHEMES:
            counter = per_scheme[scheme].class_counters_for(app).get(class_index)
            row.append(counter.hit_rate() if counter else 0.0)
        legacy_rows.append(row)
    total_row = ["total", int(total_budget)]
    for scheme, _label in table4_combined.SCHEMES:
        total_row.append(per_scheme[scheme].app_hit_rate(app))
    legacy_rows.append(total_row)

    ported = table4_combined.run(scale=SCALE_TAB4, seed=SEED)
    assert ported.rows == legacy_rows  # exact float equality
