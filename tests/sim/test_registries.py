"""Scheme/workload registry behaviour and error paths."""

from __future__ import annotations

import pytest

from repro.cache.engines import FirstComeFirstServeEngine
from repro.common.errors import ConfigurationError
from repro.sim import (
    Registry,
    SCHEMES,
    WORKLOADS,
    Scenario,
    list_schemes,
    list_workloads,
    make_engine,
    run_scenario,
)


def test_builtin_schemes_registered():
    # Subset, not equality: other tests may register extra schemes and
    # the global registry forbids re-registration, so leaks are sticky.
    assert {
        "default",
        "planned",
        "lsm",
        "hill",
        "cliff-only",
        "hill-only",
        "cliffhanger",
    } <= set(list_schemes())


def test_builtin_workloads_registered():
    assert {"memcachier", "zipf", "facebook"} <= set(list_workloads())


def test_unknown_scheme_rejected():
    with pytest.raises(ConfigurationError, match="unknown scheme 'nope'"):
        SCHEMES.get("nope")
    with pytest.raises(ConfigurationError, match="unknown scheme"):
        make_engine("nope", "app", 1 << 20)


def test_unknown_workload_rejected():
    with pytest.raises(ConfigurationError, match="unknown workload"):
        WORKLOADS.get("nope")


def test_run_scenario_surfaces_unknown_names():
    with pytest.raises(ConfigurationError, match="unknown workload"):
        run_scenario(Scenario(workload="nope", scale=0.01))
    with pytest.raises(ConfigurationError, match="unknown scheme"):
        run_scenario(
            Scenario(
                scheme="nope",
                workload="zipf",
                scale=0.01,
                workload_params={"num_keys": 100, "requests_per_app": 600},
            )
        )


def test_duplicate_registration_rejected():
    registry = Registry("thing")

    @registry.register("x")
    def build_x():
        return 1

    with pytest.raises(ConfigurationError, match="already registered"):

        @registry.register("x")
        def build_x_again():
            return 2

    assert registry.get("x") is build_x


def test_bad_registration_name_rejected():
    registry = Registry("thing")
    with pytest.raises(ConfigurationError):
        registry.register("")
    with pytest.raises(ConfigurationError):
        registry.register(None)


def test_registered_scheme_usable_from_scenario():
    """A decorator-registered scheme plugs straight into run_scenario."""
    name = "test-only-half-budget"
    if name not in SCHEMES:

        @SCHEMES.register(name)
        def _build(app, budget_bytes, *, geometry, policy="lru", **_context):
            return FirstComeFirstServeEngine(
                app, budget_bytes / 2, geometry, policy=policy
            )

    scenario = Scenario(
        scheme=name,
        workload="zipf",
        scale=0.05,
        workload_params={
            "apps": 1,
            "num_keys": 2_000,
            "requests_per_app": 20_000,
        },
    )
    result = run_scenario(scenario, keep_server=True)
    engine = result.server.engines["zipf01"]
    assert engine.budget_bytes == pytest.approx(
        result.budgets["zipf01"] / 2
    )
    assert 0.0 < result.overall_hit_rate < 1.0


def test_workload_bad_params_rejected():
    with pytest.raises(ConfigurationError, match="unknown zipf"):
        run_scenario(
            Scenario(
                workload="zipf",
                scale=0.01,
                workload_params={"num_kyes": 100},
            )
        )
    with pytest.raises(ConfigurationError, match="unknown facebook"):
        run_scenario(
            Scenario(
                workload="facebook",
                scale=0.01,
                workload_params={"zipf_alpha": 1.0},
            )
        )
