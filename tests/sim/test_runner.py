"""run_scenario / replay_on_trace behaviour."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.common import load_trace, replay_apps
from repro.sim import Scenario, load_workload, run_scenario

TINY = 0.012

ZIPF_PARAMS = {"apps": 2, "num_keys": 3_000, "requests_per_app": 25_000}


def zipf_scenario(**changes) -> Scenario:
    base = Scenario(workload="zipf", scale=0.1, workload_params=ZIPF_PARAMS)
    return base.replace(**changes) if changes else base


def test_run_scenario_reports_throughput_and_rates():
    result = run_scenario(zipf_scenario(scheme="default"))
    assert set(result.hit_rates) == {"zipf01", "zipf02"}
    assert all(0.0 <= rate <= 1.0 for rate in result.hit_rates.values())
    assert result.requests > 0
    assert result.gets == result.requests  # zipf default: all GETs
    assert result.elapsed_seconds > 0
    assert result.requests_per_sec > 0
    assert result.server is None  # not kept by default


def test_keep_server_exposes_engines_and_stats():
    result = run_scenario(zipf_scenario(), keep_server=True)
    assert set(result.server.engines) == {"zipf01", "zipf02"}
    assert result.stats.total.gets == result.gets


def test_partial_budgets_fall_back_to_reservations():
    """A budgets dict naming only some apps must not KeyError; unnamed
    apps keep their workload reservations."""
    trace = load_workload("zipf", scale=0.1, seed=0, **ZIPF_PARAMS)
    full = trace.reservations["zipf02"]
    result = run_scenario(zipf_scenario(budgets={"zipf01": 128 * 1024.0}))
    assert result.budgets["zipf01"] == 128 * 1024.0
    assert result.budgets["zipf02"] == full


def test_replay_apps_partial_budgets_fall_back():
    """The legacy helper gets the same fallback (it used to KeyError)."""
    trace = load_trace(scale=TINY, seed=0, apps=[3, 19])
    server, stats = replay_apps(
        trace, "default", budgets={"app19": 256 * 1024.0}
    )
    assert server.engines["app19"].budget_bytes == 256 * 1024.0
    assert server.engines["app03"].budget_bytes == pytest.approx(
        trace.reservations["app03"]
    )
    assert stats.total.gets > 0


def test_apps_subset_replays_only_those_apps():
    trace = load_trace(scale=TINY, seed=0, apps=[3, 19])
    result = run_scenario(
        Scenario(
            workload="memcachier",
            workload_params={"apps": [3, 19]},
            scale=TINY,
            apps=["app19"],
        ),
        keep_server=True,
    )
    assert set(result.server.engines) == {"app19"}
    assert set(result.hit_rates) == {"app19"}
    assert result.requests == trace.requests_per_app["app19"]


def test_solver_plans_sentinel_matches_explicit_plans():
    from repro.sim import solver_plan_for_app

    trace = load_trace(scale=TINY, seed=0, apps=[4])
    explicit = {
        app: solver_plan_for_app(trace, app) for app in trace.app_names
    }
    base = Scenario(
        workload="memcachier",
        workload_params={"apps": [4]},
        scale=TINY,
        scheme="planned",
    )
    via_sentinel = run_scenario(base.replace(plans="solver"))
    via_dict = run_scenario(base.replace(plans=explicit))
    assert via_sentinel.hit_rates == via_dict.hit_rates


def test_planned_scheme_without_plan_rejected():
    with pytest.raises(ConfigurationError, match="needs a plan"):
        run_scenario(zipf_scenario(scheme="planned"))


def test_solver_plans_respect_budget_overrides():
    """plans="solver" must size the plan to the overridden budget, not
    the workload reservation (a smaller override used to crash)."""
    base = Scenario(
        workload="memcachier",
        workload_params={"apps": [4]},
        scale=TINY,
        scheme="planned",
        plans="solver",
    )
    trace = load_workload("memcachier", scale=TINY, seed=0, apps=[4])
    small = trace.reservations["app04"] / 4
    result = run_scenario(
        base.replace(budgets={"app04": small}), keep_server=True
    )
    assert result.budgets["app04"] == small
    engine = result.server.engines["app04"]
    assert sum(engine.plan.values()) <= small + 1e-6


def test_unknown_app_name_rejected_cleanly():
    with pytest.raises(ConfigurationError, match="unknown app"):
        run_scenario(zipf_scenario(apps=["bogus"]))


def test_unknown_policy_rejected_cleanly():
    with pytest.raises(ConfigurationError, match="unknown policy"):
        run_scenario(zipf_scenario(policy="bogus"))


def test_non_numeric_budget_rejected_cleanly():
    with pytest.raises(ConfigurationError, match="bad scenario spec"):
        Scenario.from_dict({"budgets": {"a": "lots"}})
    with pytest.raises(ConfigurationError, match="bad scenario spec"):
        Scenario.from_dict({"plans": {"a": {"x": 1.0}}})


def test_cliff_schemes_reject_non_lru_policy():
    """Cliff scaling assumes LRU rank semantics; a policy sweep over
    these schemes must fail loudly instead of silently running LRU."""
    for scheme in ("cliffhanger", "cliff-only", "hill-only"):
        with pytest.raises(ConfigurationError, match="only the 'lru'"):
            run_scenario(zipf_scenario(scheme=scheme, policy="arc"))


def test_baseline_fills_miss_reductions():
    default = run_scenario(zipf_scenario(scheme="default"))
    cliff = run_scenario(zipf_scenario(scheme="cliffhanger"), baseline=default)
    assert set(cliff.miss_reductions) == set(cliff.hit_rates)


def test_facebook_workload_replays():
    result = run_scenario(
        Scenario(
            workload="facebook",
            scale=0.05,
            workload_params={"requests_per_app": 40_000},
        )
    )
    assert set(result.hit_rates) == {"etc01"}
    # ETC mix: mostly GETs plus a SET share.
    assert 0 < result.gets < result.requests


def test_facebook_unique_keys_all_miss():
    result = run_scenario(
        Scenario(
            workload="facebook",
            scale=0.05,
            workload_params={
                "requests_per_app": 20_000,
                "unique_keys": True,
            },
        )
    )
    assert result.overall_hit_rate == 0.0
