"""Tests for Algorithm 1, including the section 4.1 equilibrium claim:
hill climbing equalizes the frequency-weighted hit-rate gradients."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.core.hill_climbing import HillClimber


class FakeQueue:
    def __init__(self, capacity):
        self.capacity = float(capacity)

    def get(self):
        return self.capacity

    def set(self, value):
        self.capacity = value


def make_climber(capacities, credit=10, minimum=0, seed=1):
    queues = {name: FakeQueue(c) for name, c in capacities.items()}
    climber = HillClimber(
        credit_bytes=credit, min_bytes=minimum, rng=random.Random(seed)
    )
    for name, queue in queues.items():
        climber.register(name, queue.get, queue.set)
    return climber, queues


class TestMechanics:
    def test_transfer_conserves_total(self):
        climber, queues = make_climber({"a": 100, "b": 100, "c": 100})
        for _ in range(50):
            climber.on_shadow_hit("a")
        total = sum(q.capacity for q in queues.values())
        assert total == pytest.approx(300)
        assert queues["a"].capacity > 100

    def test_victim_is_never_the_winner(self):
        climber, queues = make_climber({"a": 100, "b": 100})
        for _ in range(5):
            victim = climber.on_shadow_hit("a")
            assert victim == "b"

    def test_floor_respected(self):
        climber, queues = make_climber(
            {"a": 100, "b": 30}, credit=10, minimum=20
        )
        for _ in range(50):
            climber.on_shadow_hit("a")
        assert queues["b"].capacity >= 20 - 1e-9

    def test_no_donor_returns_none(self):
        climber, queues = make_climber({"a": 100, "b": 5}, minimum=5)
        assert climber.on_shadow_hit("a") is None

    def test_single_queue_is_noop(self):
        climber, queues = make_climber({"a": 100})
        assert climber.on_shadow_hit("a") is None
        assert queues["a"].capacity == 100

    def test_unknown_queue_raises(self):
        climber, _ = make_climber({"a": 100})
        with pytest.raises(ConfigurationError):
            climber.on_shadow_hit("ghost")

    def test_duplicate_registration_rejected(self):
        climber, _ = make_climber({"a": 100})
        with pytest.raises(ConfigurationError):
            climber.register("a", lambda: 0, lambda v: None)

    def test_invalid_credit(self):
        with pytest.raises(ConfigurationError):
            HillClimber(credit_bytes=0)


class TestEquilibrium:
    def test_equalizes_weighted_gradients(self):
        """Simulated closed loop on synthetic concave curves
        h_i(m) = 1 - exp(-m / tau_i): shadow-hit probability is
        proportional to f_i * h_i'(m_i); in equilibrium the weighted
        gradients must be (approximately) equal -- the optimality
        condition of Eq. 2."""
        import math

        taus = {"a": 50.0, "b": 150.0, "c": 300.0}
        freqs = {"a": 5.0, "b": 2.0, "c": 1.0}
        climber, queues = make_climber(
            {name: 200.0 for name in taus}, credit=2.0, seed=7
        )
        rng = random.Random(99)

        def gradient(name):
            m = queues[name].capacity
            return freqs[name] * math.exp(-m / taus[name]) / taus[name]

        # Drive shadow hits with probability proportional to the local
        # weighted gradient (what a real shadow queue measures).
        for _ in range(60000):
            grads = {name: gradient(name) for name in taus}
            total = sum(grads.values())
            u = rng.random() * total
            acc = 0.0
            for name, g in grads.items():
                acc += g
                if u <= acc:
                    climber.on_shadow_hit(name)
                    break
        final = [gradient(name) for name in taus]
        spread = max(final) / max(min(final), 1e-12)
        assert spread < 2.0, (final, {n: q.capacity for n, q in queues.items()})
        # And memory sums unchanged.
        assert sum(q.capacity for q in queues.values()) == pytest.approx(600)

    def test_starved_queue_recovers_when_demand_returns(self):
        climber, queues = make_climber({"a": 100, "b": 100}, credit=5)
        for _ in range(30):
            climber.on_shadow_hit("a")
        assert queues["b"].capacity < 100
        for _ in range(60):
            climber.on_shadow_hit("b")
        assert queues["b"].capacity > 100
