"""Tests for the partitioned CliffhangerQueue (Algorithms 2 + 3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.policies import make_policy
from repro.core.cliff_scaling import CliffConfig, CliffhangerQueue
from repro.workloads.generators import ReuseDistanceStream
from repro.workloads.sizes import FixedSize

CHUNK = 256


def config(**overrides):
    defaults = dict(
        chunk_size=CHUNK,
        probe_items=16,
        credit_bytes=8 * CHUNK,
        min_queue_items_for_cliff=100,
        hill_shadow_bytes=64 * CHUNK,
    )
    defaults.update(overrides)
    return CliffConfig(**defaults)


def replay(queue, keys):
    hits = 0
    for key in keys:
        if queue.access(key).hit:
            hits += 1
        else:
            queue.insert(key)
    return hits / max(1, len(keys))


def lru_replay(capacity_bytes, keys):
    policy = make_policy("lru", capacity_bytes)
    hits = 0
    for key in keys:
        if policy.access(key):
            hits += 1
        else:
            policy.insert(key, CHUNK)
    return hits / max(1, len(keys))


def sigmoid_keys(n=120_000, mean=400, sigma=80, seed=1):
    stream = ReuseDistanceStream(
        "t", mean, sigma, FixedSize(100), refs_per_key=9, seed=seed
    )
    return [r.key for r in stream.generate(n, 1000.0)]


def zipf_keys_local(rng, num_keys, count, alpha=1.0):
    from tests.conftest import zipf_keys

    return zipf_keys(rng, num_keys, count, alpha)


class TestBasics:
    def test_miss_then_hit(self):
        queue = CliffhangerQueue("q", 50 * CHUNK, config())
        assert queue.access("a").hit is False
        queue.insert("a")
        assert queue.access("a").hit is True

    def test_capacity_accounting(self):
        queue = CliffhangerQueue("q", 10 * CHUNK, config())
        for i in range(30):
            queue.insert(f"k{i}")
        assert queue.used_bytes <= queue.capacity_bytes + 1e-9
        assert queue.physical_items() <= 10

    def test_gated_small_queue_is_unsplit(self):
        queue = CliffhangerQueue(
            "q", 50 * CHUNK, config(min_queue_items_for_cliff=1000)
        )
        assert queue.cliff_active is False
        left, right = queue.partition_sizes()
        assert left == 0.0
        assert right == pytest.approx(50 * CHUNK)

    def test_disabled_cliff_scaling_never_splits(self):
        queue = CliffhangerQueue(
            "q", 400 * CHUNK, config(), enable_cliff_scaling=False
        )
        replay(queue, sigmoid_keys(n=30000))
        assert queue._split is False

    def test_remove(self):
        queue = CliffhangerQueue("q", 50 * CHUNK, config())
        queue.insert("a")
        assert queue.remove("a") is True
        assert queue.access("a").hit is False


class TestEquivalenceWithLRU:
    def test_gated_queue_matches_lru_exactly(self, rng):
        """Below the size gate the queue is a plain LRU."""
        keys = zipf_keys_local(rng, 80, 5000)
        queue = CliffhangerQueue(
            "q", 40 * CHUNK, config(min_queue_items_for_cliff=10**6)
        )
        assert replay(queue, keys) == pytest.approx(
            lru_replay(40 * CHUNK, keys)
        )

    def test_concave_workload_stays_unsplit_and_lossless(self, rng):
        """On a concave (zipf) curve the right pointer stays pinned, the
        queue never splits and the hit rate matches plain LRU."""
        keys = zipf_keys_local(rng, 300, 40000, alpha=0.9)
        queue = CliffhangerQueue("q", 150 * CHUNK, config())
        cliffhanger_rate = replay(queue, keys)
        lru_rate = lru_replay(150 * CHUNK, keys)
        # Transient diffusion splits are allowed (the self-evaluation
        # reverts them); what matters is the hit rate does not regress.
        assert cliffhanger_rate >= lru_rate - 0.02


class TestCliffScaling:
    def test_beats_lru_inside_a_cliff(self):
        keys = sigmoid_keys()
        capacity = 300 * CHUNK  # inside the [~240, ~560] ramp
        stuck = lru_replay(capacity, keys)
        queue = CliffhangerQueue("q", capacity, config())
        scaled = replay(queue, keys)
        assert scaled > stuck + 0.05
        assert queue.splits >= 1

    def test_no_loss_above_the_cliff(self):
        keys = sigmoid_keys()
        capacity = 460 * CHUNK  # past the ramp top
        covered = lru_replay(capacity, keys)
        queue = CliffhangerQueue("q", capacity, config())
        assert replay(queue, keys) >= covered - 0.02

    def test_pointers_bracket_the_operating_point(self):
        keys = sigmoid_keys(n=60000)
        queue = CliffhangerQueue("q", 300 * CHUNK, config())
        replay(queue, keys)
        assert queue.left_pointer <= queue.capacity_bytes + 1e-9
        assert queue.right_pointer >= queue.capacity_bytes - 1e-9

    def test_partition_sizes_sum_to_capacity(self):
        keys = sigmoid_keys(n=60000)
        queue = CliffhangerQueue(
            "q", 300 * CHUNK, config(resize_on_miss=False)
        )
        replay(queue, keys)
        left, right = queue.partition_sizes()
        assert left + right == pytest.approx(300 * CHUNK, rel=1e-6)

    def test_resize_on_miss_defers_repartition(self):
        queue = CliffhangerQueue("q", 300 * CHUNK, config())
        # Force a pointer event state then check the pending flag clears
        # only via insert (the miss path).
        queue.right_pointer = queue.capacity_bytes + 100 * CHUNK
        queue._update_split_state()
        queue._recompute_ratio()
        assert queue._pending_resize is True
        queue.insert("new-key")
        assert queue._pending_resize is False


class TestHillClimbIntegration:
    def test_set_capacity_shrink_and_grow(self):
        queue = CliffhangerQueue("q", 100 * CHUNK, config())
        for i in range(100):
            queue.insert(f"k{i}")
        queue.set_capacity(50 * CHUNK)
        assert queue.used_bytes <= 50 * CHUNK + 1e-9
        queue.set_capacity(200 * CHUNK)
        assert queue.capacity_bytes == 200 * CHUNK

    def test_shadow_keys_counted_in_overhead(self):
        queue = CliffhangerQueue("q", 10 * CHUNK, config())
        for i in range(200):
            queue.insert(f"k{i}")
        assert queue.overhead_items() > 0

    def test_hill_shadow_reports_demand_beyond_capacity(self):
        queue = CliffhangerQueue("q", 5 * CHUNK, config())
        for i in range(30):
            queue.insert(f"k{i}")
        # Keys evicted long ago sit in the hill shadow (deeper than the
        # tail and cliff probes): a find there is a miss + hill_hit.
        result = queue.access("k2")
        assert result.hit is False
        assert result.hill_hit is True


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_budget_invariant_under_random_traffic(seed):
    """Property: whatever the traffic, physical usage never exceeds
    capacity and the partitions never exceed their targets."""
    rng = random.Random(seed)
    queue = CliffhangerQueue("q", 60 * CHUNK, config())
    for step in range(800):
        key = f"k{rng.randrange(120)}"
        if not queue.access(key).hit:
            queue.insert(key)
        if step % 100 == 7:
            queue.set_capacity(rng.choice([40, 60, 90]) * CHUNK)
        assert queue.used_bytes <= queue.capacity_bytes + 1e-6
    queue.left.chain.check_invariants()
    queue.right.chain.check_invariants()
