"""Tests for ShadowedQueue: the physical-policy + key-only-shadow unit."""

import pytest

from repro.cache.policies import make_policy
from repro.core.managed import ShadowedQueue


def make(capacity=10, shadow=10, policy="lru"):
    return ShadowedQueue(
        make_policy(policy, capacity, name="t"),
        shadow_bytes=shadow,
        name="t",
    )


class TestShadowedQueue:
    def test_hit_miss_shadow_lifecycle(self):
        queue = make(capacity=2, shadow=10)
        queue.insert("a", 1)
        queue.insert("b", 1)
        queue.insert("c", 1)  # evicts a into the shadow
        assert queue.access("c") == ShadowedQueue.HIT
        assert queue.access("a") == ShadowedQueue.SHADOW_HIT
        assert queue.access("zz") is ShadowedQueue.MISS

    def test_shadow_hit_removes_from_shadow(self):
        queue = make(capacity=1, shadow=10)
        queue.insert("a", 1)
        queue.insert("b", 1)
        assert queue.access("a") == ShadowedQueue.SHADOW_HIT
        # Second probe without a refill is a full miss.
        assert queue.access("a") is ShadowedQueue.MISS

    def test_shadow_counts_hits(self):
        queue = make(capacity=1, shadow=10)
        queue.insert("a", 1)
        queue.insert("b", 1)
        queue.access("a")
        assert queue.shadow_hits == 1

    def test_shadow_capacity_is_represented_bytes(self):
        queue = make(capacity=1, shadow=3)
        for key in "abcdef":
            queue.insert(key, 1)
        # shadow holds at most 3 represented bytes = 3 unit items
        assert len(queue.shadow) <= 3

    def test_shrink_moves_items_into_shadow(self):
        queue = make(capacity=4, shadow=10)
        for key in "abcd":
            queue.insert(key, 1)
        evicted = queue.set_capacity(2)
        assert evicted == 2
        assert queue.used_bytes <= 2
        # The evicted keys are shadow-visible.
        assert queue.access("a") == ShadowedQueue.SHADOW_HIT

    def test_overhead_accounts_keys_only(self):
        queue = make(capacity=1, shadow=100)
        for i in range(5):
            queue.insert(f"k{i}", 1)
        assert queue.overhead_bytes() == len(queue.shadow) * queue.avg_key_bytes

    def test_no_double_residency(self):
        queue = make(capacity=2, shadow=10)
        queue.insert("a", 1)
        queue.insert("b", 1)
        queue.insert("c", 1)  # a -> shadow
        queue.insert("a", 1)  # refill
        assert "a" not in queue.shadow
        assert queue.access("a") == ShadowedQueue.HIT

    def test_remove_clears_everywhere(self):
        queue = make(capacity=1, shadow=10)
        queue.insert("a", 1)
        queue.insert("b", 1)  # a in shadow
        assert queue.remove("a") is True
        assert queue.access("a") is ShadowedQueue.MISS

    @pytest.mark.parametrize("policy", ["lru", "lfu", "arc", "facebook"])
    def test_any_policy_supported(self, policy):
        queue = make(capacity=3, shadow=10, policy=policy)
        for key in "abcde":
            queue.insert(key, 1)
        results = {queue.access(key) for key in "abcde"}
        assert ShadowedQueue.HIT in results
