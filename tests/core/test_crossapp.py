"""Tests for cross-application hill climbing (section 3.3)."""

import pytest

from repro.cache.engines import FirstComeFirstServeEngine
from repro.cache.server import CacheServer
from repro.cache.slabs import SlabGeometry
from repro.core.crossapp import CrossAppHillClimber
from repro.workloads.trace import Request

GEO = SlabGeometry.default()


def get(key, app, size=100, t=0.0):
    return Request(time=t, app=app, key=key, op="get", value_size=size)


def build_server(budgets):
    server = CacheServer(GEO)
    for app, budget in budgets.items():
        server.add_app(FirstComeFirstServeEngine(app, budget, GEO))
    return server


class TestCrossAppHillClimber:
    def test_budgets_conserved(self, rng):
        server = build_server({"rich": 128 * 1024, "poor": 128 * 1024})
        climber = CrossAppHillClimber(
            server, credit_bytes=2048, shadow_bytes=64 * 1024, seed=1
        ).attach()
        for i in range(8000):
            server.process(get(f"r{rng.randrange(50)}", "rich"))
            server.process(get(f"p{rng.randrange(4000)}", "poor"))
        budgets = climber.budgets()
        assert sum(budgets.values()) == pytest.approx(256 * 1024, rel=0.01)

    def test_memory_flows_to_the_starved_app(self, rng):
        """'rich' has a tiny working set; 'poor' misses constantly with
        demand just beyond its reservation. Budget should flow."""
        server = build_server({"rich": 192 * 1024, "poor": 64 * 1024})
        climber = CrossAppHillClimber(
            server, credit_bytes=4096, shadow_bytes=128 * 1024, seed=2
        ).attach()
        for i in range(12000):
            server.process(get(f"r{rng.randrange(30)}", "rich"))
            server.process(get(f"p{rng.randrange(1500)}", "poor", size=200))
        assert climber.budgets()["poor"] > 64 * 1024

    def test_observer_ignores_unknown_apps(self):
        server = build_server({"a": 64 * 1024})
        climber = CrossAppHillClimber(server, seed=0)
        from repro.cache.stats import AccessOutcome

        climber.observe(
            get("k", "ghost"),
            AccessOutcome(hit=False, app="ghost", op="get"),
        )  # must not raise

    def test_physical_hits_do_not_trigger_climbing(self, rng):
        server = build_server({"a": 256 * 1024, "b": 256 * 1024})
        climber = CrossAppHillClimber(server, seed=0).attach()
        for i in range(2000):
            server.process(get("hot", "a"))
        assert climber.climber.transfers == 0
