"""End-to-end tests for HillClimbEngine and CliffhangerEngine."""

import pytest

from repro.cache.slabs import SlabGeometry
from repro.core.engine import CliffhangerEngine, HillClimbEngine
from repro.workloads.trace import Request

GEO = SlabGeometry.default()


def get(key, size=100, app="a", t=0.0):
    return Request(time=t, app=app, key=key, op="get", value_size=size)


@pytest.mark.parametrize("engine_cls", [HillClimbEngine, CliffhangerEngine])
class TestCommonEngineBehaviour:
    def test_fill_on_miss(self, engine_cls):
        engine = engine_cls("a", 1 << 20, GEO)
        assert engine.process(get("k")).hit is False
        assert engine.process(get("k")).hit is True

    def test_budget_respected(self, engine_cls, rng):
        engine = engine_cls("a", 64 * 1024, GEO)
        for i in range(3000):
            engine.process(get(f"k{rng.randrange(800)}", size=rng.choice([60, 400, 2000])))
        assert engine.used_bytes() <= engine.budget_bytes + 1e-6
        reserved = sum(engine.capacities().values())
        assert reserved <= engine.budget_bytes + 1e-6

    def test_shrink_budget(self, engine_cls, rng):
        engine = engine_cls("a", 256 * 1024, GEO)
        for i in range(2000):
            engine.process(get(f"k{i}", size=200))
        engine.shrink_budget(128 * 1024)
        assert engine.used_bytes() <= engine.budget_bytes + 1e-6

    def test_grow_budget_enables_more_caching(self, engine_cls):
        engine = engine_cls("a", 8 * 256, GEO)
        for i in range(64):
            engine.process(get(f"k{i}", size=100))
        engine.grow_budget(1 << 20)
        for i in range(64):
            engine.process(get(f"k{i}", size=100))
        hits = sum(
            engine.process(get(f"k{i}", size=100)).hit for i in range(64)
        )
        assert hits == 64

    def test_delete(self, engine_cls):
        engine = engine_cls("a", 1 << 20, GEO)
        engine.process(get("k"))
        outcome = engine.process(
            Request(0.0, "a", "k", "delete", value_size=100)
        )
        assert outcome.hit is True
        assert engine.process(get("k")).hit is False

    def test_ops_counted(self, engine_cls):
        engine = engine_cls("a", 1 << 20, GEO)
        engine.process(get("k"))
        engine.process(get("k"))
        assert engine.ops.hash_lookups == 2
        assert engine.ops.inserts >= 1
        assert engine.ops.promotes >= 1


class TestHillClimbingAcrossClasses:
    def test_memory_follows_demand_shift(self, rng):
        """Classic section 5.4 behaviour: traffic moves from one slab
        class to another; hill climbing follows."""
        engine = HillClimbEngine(
            "a",
            80 * 1024,
            GEO,
            credit_bytes=1024,
            shadow_bytes=32 * 1024,
            min_bytes=1024,
            seed=3,
        )
        # Phase 1: small items only (class 2).
        for i in range(15000):
            engine.process(get(f"s{rng.randrange(600)}", size=100))
        phase1 = dict(engine.capacities())
        # Phase 2: large items burst (class 5, 2048B chunks).
        for i in range(15000):
            engine.process(get(f"L{rng.randrange(200)}", size=1500))
        phase2 = dict(engine.capacities())
        assert phase2.get(5, 0.0) > phase1.get(5, 0.0)
        assert phase2.get(2, 1e18) < phase1.get(2, 0.0) + 1e-6

    def test_shadow_hit_reported_in_outcome(self):
        engine = HillClimbEngine("a", 4 * 256, GEO, shadow_bytes=1 << 16)
        for i in range(10):
            engine.process(get(f"k{i}", size=100))
        outcome = engine.process(get("k0", size=100))
        assert outcome.hit is False
        assert outcome.shadow_hit is True

    def test_policy_parameter(self):
        engine = HillClimbEngine("a", 1 << 20, GEO, policy="facebook")
        engine.process(get("k"))
        assert engine.process(get("k")).hit is True


class TestCliffhangerEngineFlags:
    def test_hill_only_never_splits(self, rng):
        engine = CliffhangerEngine(
            "a", 1 << 20, GEO, enable_cliff_scaling=False
        )
        for i in range(4000):
            engine.process(get(f"k{rng.randrange(900)}", size=100))
        assert all(q._split is False for q in engine.queues.values())

    def test_cliff_only_does_not_transfer_memory(self, rng):
        engine = CliffhangerEngine(
            "a", 1 << 20, GEO, enable_hill_climbing=False
        )
        for i in range(2000):
            engine.process(get(f"k{rng.randrange(300)}", size=100))
            engine.process(get(f"L{rng.randrange(300)}", size=3000))
        assert engine.climber.transfers == 0

    def test_scaled_constants_accepted(self):
        engine = CliffhangerEngine(
            "a", 1 << 20, GEO, probe_items=16, min_cliff_items=120
        )
        engine.process(get("k"))
        queue = engine.queues[2]
        assert queue.config.probe_items == 16
        assert queue.config.min_queue_items_for_cliff == 120
