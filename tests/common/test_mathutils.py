"""Tests for concave hulls, interpolation and EMA."""

import pytest
from hypothesis import given, strategies as st

from repro.common.mathutils import (
    ExponentialMovingAverage,
    clamp,
    concave_hull,
    interpolate,
)


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below_and_above(self):
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)


class TestInterpolate:
    def test_exact_points(self):
        xs, ys = [0, 10, 20], [0.0, 1.0, 4.0]
        for x, y in zip(xs, ys):
            assert interpolate(xs, ys, x) == pytest.approx(y)

    def test_midpoint(self):
        assert interpolate([0, 10], [0.0, 1.0], 5) == pytest.approx(0.5)

    def test_clamps_outside_range(self):
        assert interpolate([0, 10], [0.2, 0.8], -5) == pytest.approx(0.2)
        assert interpolate([0, 10], [0.2, 0.8], 50) == pytest.approx(0.8)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            interpolate([0, 1], [0.0], 0.5)


class TestConcaveHull:
    def test_empty(self):
        assert concave_hull([]) == []

    def test_single_point(self):
        assert concave_hull([(1.0, 0.5)]) == [(1.0, 0.5)]

    def test_concave_input_is_unchanged(self):
        points = [(0, 0.0), (1, 0.5), (2, 0.8), (3, 0.9)]
        hull = concave_hull(points)
        assert hull == [(0.0, 0.0), (1.0, 0.5), (2.0, 0.8), (3.0, 0.9)]

    def test_convex_bump_is_bridged(self):
        # A cliff: flat then jump. The hull is the straight chord.
        points = [(0, 0.0), (5, 0.05), (9, 0.1), (10, 1.0)]
        hull = concave_hull(points)
        assert (5, 0.05) not in hull
        assert (9, 0.1) not in hull
        assert hull[0] == (0.0, 0.0)
        assert hull[-1] == (10.0, 1.0)

    def test_duplicate_x_keeps_max_y(self):
        hull = concave_hull([(0, 0.0), (1, 0.2), (1, 0.7), (2, 0.8)])
        assert (1.0, 0.7) in hull
        assert (1.0, 0.2) not in hull

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 1, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_hull_dominates_points(self, points):
        """Property: the hull, linearly interpolated, sits at or above
        every input point within its x-range."""
        hull = concave_hull(points)
        xs = [p[0] for p in hull]
        ys = [p[1] for p in hull]
        for x, y in points:
            if xs[0] <= x <= xs[-1]:
                assert interpolate(xs, ys, x) >= y - 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 1, allow_nan=False),
            ),
            min_size=3,
            max_size=40,
        )
    )
    def test_hull_is_concave(self, points):
        """Property: consecutive hull slopes are non-increasing."""
        hull = concave_hull(points)
        slopes = []
        for (x0, y0), (x1, y1) in zip(hull, hull[1:]):
            assert x1 > x0
            slopes.append((y1 - y0) / (x1 - x0))
        for s0, s1 in zip(slopes, slopes[1:]):
            assert s1 <= s0 + 1e-9


class TestEMA:
    def test_first_update_sets_value(self):
        ema = ExponentialMovingAverage(0.5)
        assert ema.value is None
        assert ema.update(10.0) == 10.0

    def test_converges_to_constant(self):
        ema = ExponentialMovingAverage(0.2)
        for _ in range(200):
            ema.update(3.0)
        assert ema.value == pytest.approx(3.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(1.5)

    def test_reset(self):
        ema = ExponentialMovingAverage(0.3)
        ema.update(1.0)
        ema.reset()
        assert ema.value is None
