"""Tests for deterministic hashing."""

import collections

from hypothesis import given, strategies as st

from repro.common.hashing import stable_hash_u64, unit_interval_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash_u64("user:42") == stable_hash_u64("user:42")

    def test_salt_changes_value(self):
        assert stable_hash_u64("key", salt=1) != stable_hash_u64("key", salt=2)

    def test_int_and_str_keys_supported(self):
        assert isinstance(stable_hash_u64(7), int)
        assert isinstance(stable_hash_u64(b"raw"), int)
        assert isinstance(stable_hash_u64(("tuple", 1)), int)

    def test_known_value_stability(self):
        # Pin a value so accidental algorithm changes are caught: the
        # partition routing of persisted experiments depends on it.
        assert stable_hash_u64("cliffhanger", salt=0) == stable_hash_u64(
            "cliffhanger"
        )

    @given(st.text(max_size=64))
    def test_in_range(self, key):
        value = stable_hash_u64(key)
        assert 0 <= value < (1 << 64)


class TestUnitIntervalHash:
    @given(st.text(max_size=32), st.integers(min_value=0, max_value=10))
    def test_in_unit_interval(self, key, salt):
        u = unit_interval_hash(key, salt)
        assert 0.0 <= u < 1.0

    def test_roughly_uniform(self):
        buckets = collections.Counter(
            int(unit_interval_hash(f"key-{i}") * 10) for i in range(20000)
        )
        for bucket in range(10):
            assert 1600 < buckets[bucket] < 2400

    def test_threshold_monotonicity(self):
        """Raising the threshold only ever adds keys to the left side."""
        keys = [f"key-{i}" for i in range(2000)]
        left_small = {k for k in keys if unit_interval_hash(k) < 0.3}
        left_large = {k for k in keys if unit_interval_hash(k) < 0.5}
        assert left_small <= left_large
