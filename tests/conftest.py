"""Shared test fixtures and helpers."""

from __future__ import annotations

import random

import pytest

from repro.cache.slabs import SlabGeometry


@pytest.fixture
def geometry() -> SlabGeometry:
    return SlabGeometry.default()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC11FF)


def zipf_keys(rng: random.Random, num_keys: int, count: int, alpha: float = 1.0):
    """Small pure-python zipf key stream for unit tests."""
    weights = [1.0 / (rank + 1) ** alpha for rank in range(num_keys)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    keys = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, num_keys - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        keys.append(f"k{lo}")
    return keys
