"""Tests for KeyQueue and QueueChain, including the LRU-equivalence
property the whole shadow-queue design rests on."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.keyqueue import KeyQueue, QueueChain
from repro.common.errors import CacheError, ConfigurationError


class TestKeyQueue:
    def test_push_front_orders_mru_first(self):
        q = KeyQueue(10)
        q.push_front("a", 1)
        q.push_front("b", 1)
        assert list(q.keys_mru_to_lru()) == ["b", "a"]

    def test_push_existing_updates_weight_and_used(self):
        q = KeyQueue(10)
        q.push_front("a", 2)
        q.push_front("a", 5)
        assert len(q) == 1
        assert q.used == 5

    def test_pop_back_removes_lru(self):
        q = KeyQueue(10)
        q.push_front("a", 1)
        q.push_front("b", 1)
        assert q.pop_back() == ("a", 1)

    def test_pop_empty_raises(self):
        with pytest.raises(CacheError):
            KeyQueue(1).pop_back()

    def test_overflow_pops_until_within_capacity(self):
        q = KeyQueue(3)
        for key in "abcde":
            q.push_front(key, 1)
        dropped = list(q.overflow())
        assert [k for k, _ in dropped] == ["a", "b"]
        assert q.used == 3

    def test_overflow_handles_oversized_item(self):
        q = KeyQueue(3)
        q.push_front("big", 10)
        dropped = list(q.overflow())
        assert dropped == [("big", 10)]
        assert len(q) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyQueue(-1)

    def test_negative_weight_rejected(self):
        with pytest.raises(CacheError):
            KeyQueue(5).push_front("a", -1)

    def test_resize_does_not_evict_by_itself(self):
        q = KeyQueue(5)
        q.push_front("a", 5)
        q.resize(1)
        assert "a" in q  # caller drains overflow explicitly
        assert list(q.overflow()) == [("a", 5)]


class TestQueueChain:
    def make_chain(self, capacities=(2, 2, 2)):
        segments = [
            KeyQueue(c, name=f"seg{i}") for i, c in enumerate(capacities)
        ]
        return QueueChain(segments, physical_segments=1)

    def test_insert_and_access_front_segment(self):
        chain = self.make_chain()
        chain.insert("a", 1)
        assert chain.segment_of("a") == 0
        assert chain.access("a") == 0

    def test_cascade_demotes_to_next_segment(self):
        chain = self.make_chain((2, 2, 2))
        for key in "abc":
            chain.insert(key, 1)
        # "a" overflowed segment 0 into segment 1.
        assert chain.segment_of("a") == 1
        assert chain.segment_of("b") == 0

    def test_drop_off_the_end(self):
        chain = self.make_chain((1, 1, 1))
        dropped = []
        for key in "abcd":
            dropped += chain.insert(key, 1)
        assert [k for k, _ in dropped] == ["a"]
        assert "a" not in chain

    def test_access_promotes_from_deep_segment(self):
        chain = self.make_chain((2, 2, 2))
        for key in "abcde":
            chain.insert(key, 1)
        deep = chain.segment_of("a")
        assert deep is not None and deep > 0
        assert chain.access("a") == deep
        assert chain.segment_of("a") == 0

    def test_access_miss_returns_none(self):
        chain = self.make_chain()
        assert chain.access("ghost") is None

    def test_remove(self):
        chain = self.make_chain()
        chain.insert("a", 1)
        assert chain.remove("a") is True
        assert chain.remove("a") is False

    def test_physical_accounting(self):
        chain = self.make_chain((2, 2, 2))
        for key in "abcd":
            chain.insert(key, 1)
        assert chain.physical_len() == 2
        assert chain.physical_used == 2
        assert chain.is_physical(chain.segments[0].peek_back()[0])

    def test_resize_segment_cascades(self):
        chain = self.make_chain((3, 1, 0))
        for key in "abc":
            chain.insert(key, 1)
        dropped = chain.resize_segment(0, 1)
        # b and c... LRU of seg0 demoted; seg1 holds 1; seg2 cap 0 drops.
        assert chain.segments[0].used == 1
        assert len(dropped) == 1

    def test_duplicate_segment_names_rejected(self):
        with pytest.raises(ConfigurationError):
            QueueChain([KeyQueue(1, name="x"), KeyQueue(1, name="x")])

    def test_chain_equals_single_lru(self, rng):
        """THE load-bearing property: a chain of segments with
        promote-to-front semantics hits exactly like one LRU of the
        total size, and the segment index reports the item's rank band.
        """
        total = 30
        chain = QueueChain(
            [
                KeyQueue(10, name="a"),
                KeyQueue(5, name="b"),
                KeyQueue(15, name="c"),
            ],
            physical_segments=3,
        )
        single = KeyQueue(total, name="single")
        for step in range(4000):
            key = f"k{rng.randrange(60)}"
            found_chain = chain.access(key)
            if found_chain is None:
                chain.insert(key, 1)
            # single LRU
            if key in single:
                single.push_front(key, 1)
                found_single = True
            else:
                single.push_front(key, 1)
                for _ in single.overflow():
                    pass
                found_single = False
            assert (found_chain is not None) == found_single, step
        chain.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 25), st.booleans()),
            min_size=1,
            max_size=300,
        ),
        st.tuples(
            st.integers(1, 8), st.integers(0, 8), st.integers(0, 8)
        ),
    )
    def test_invariants_under_random_ops(self, ops, capacities):
        """Property: any op sequence leaves the chain self-consistent."""
        chain = QueueChain(
            [
                KeyQueue(c, name=f"s{i}")
                for i, c in enumerate(capacities)
            ],
            physical_segments=2,
        )
        for key_id, is_remove in ops:
            key = f"k{key_id}"
            if is_remove:
                chain.remove(key)
            elif chain.access(key) is None:
                chain.insert(key, 1)
        chain.check_invariants()
