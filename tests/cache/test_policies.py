"""Tests for the eviction policies: per-policy behaviour plus generic
interface properties every policy must satisfy."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.policies import POLICIES, make_policy
from repro.cache.policies.arc import ARCPolicy
from repro.cache.policies.lfu import LFUPolicy
from repro.cache.policies.lru import LRUPolicy
from repro.cache.policies.lruk import LRUKPolicy
from repro.cache.policies.slru import FacebookPolicy, SLRUPolicy
from repro.cache.policies.twoq import TwoQPolicy

ALL_KINDS = sorted(POLICIES)


class TestRegistry:
    def test_all_policies_constructible(self):
        for kind in ALL_KINDS:
            policy = make_policy(kind, 1024, name="t")
            assert policy.capacity == 1024
            assert len(policy) == 0

    def test_unknown_policy(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_policy("nope", 10)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestGenericPolicyContract:
    """Invariants every policy must uphold."""

    def test_miss_then_hit(self, kind):
        policy = make_policy(kind, 1000)
        assert policy.access("a") is False
        policy.insert("a", 10)
        assert policy.access("a") is True

    def test_capacity_never_exceeded(self, kind, rng):
        policy = make_policy(kind, 50)
        for i in range(500):
            key = f"k{rng.randrange(40)}"
            if not policy.access(key):
                policy.insert(key, rng.choice([1, 3, 7]))
            assert policy.used <= 50 + 1e-9

    def test_eviction_returns_the_evicted(self, kind, rng):
        policy = make_policy(kind, 20)
        inserted, evicted = set(), set()
        for i in range(200):
            key = f"k{i}"
            inserted.add(key)
            for victim, _ in policy.insert(key, 1):
                evicted.add(victim)
        resident = set(policy.keys())
        assert resident | evicted == inserted
        assert not resident & evicted

    def test_remove(self, kind):
        policy = make_policy(kind, 100)
        policy.insert("a", 5)
        assert policy.remove("a") is True
        assert policy.access("a") is False
        assert policy.remove("a") is False
        assert policy.used == 0

    def test_resize_shrinks_and_evicts(self, kind):
        policy = make_policy(kind, 100)
        evicted_total = 0
        for i in range(10):
            evicted_total += len(policy.insert(f"k{i}", 10))
        evicted_total += len(policy.resize(30))
        assert policy.used <= 30
        # Everything not resident was reported evicted exactly once.
        assert evicted_total == 10 - len(policy)

    def test_reinsert_updates_weight(self, kind):
        # Weights chosen to fit every policy's smallest internal
        # segment (2Q's A1in is 25% of capacity).
        policy = make_policy(kind, 100)
        policy.insert("a", 10)
        policy.insert("a", 15)
        assert len(policy) == 1
        assert policy.used == 15


class TestLRUSpecifics:
    def test_eviction_order_is_lru(self):
        policy = LRUPolicy(3)
        for key in "abc":
            policy.insert(key, 1)
        policy.access("a")  # a is now MRU
        evicted = policy.insert("d", 1)
        assert evicted == [("b", 1)]


class TestLFUSpecifics:
    def test_evicts_least_frequent(self):
        policy = LFUPolicy(3)
        for key in "abc":
            policy.insert(key, 1)
        policy.access("a")
        policy.access("a")
        policy.access("b")
        evicted = policy.insert("d", 1)
        assert evicted == [("c", 1)]

    def test_frequency_tracked(self):
        policy = LFUPolicy(10)
        policy.insert("a", 1)
        policy.access("a")
        policy.access("a")
        assert policy.frequency_of("a") == 3

    def test_ties_break_by_recency(self):
        policy = LFUPolicy(2)
        policy.insert("a", 1)
        policy.insert("b", 1)
        evicted = policy.insert("c", 1)  # all freq 1; a is oldest
        assert evicted == [("a", 1)]


class TestSLRUAndFacebook:
    def test_insert_lands_in_probation(self):
        policy = SLRUPolicy(10)
        policy.insert("a", 1)
        assert not policy.in_protected("a")

    def test_hit_promotes_to_protected(self):
        policy = SLRUPolicy(10)
        policy.insert("a", 1)
        policy.access("a")
        assert policy.in_protected("a")

    def test_one_hit_wonders_evicted_before_promoted(self):
        policy = FacebookPolicy(4)
        policy.insert("hot", 1)
        policy.access("hot")  # promoted to top half
        for i in range(10):
            policy.insert(f"cold{i}", 1)
        assert "hot" in policy  # scanned-in cold keys never displaced it

    def test_facebook_is_half_split(self):
        assert FacebookPolicy(100).protected_fraction == 0.5


class TestARCSpecifics:
    def test_second_access_moves_to_frequency_list(self):
        policy = ARCPolicy(10)
        policy.insert("a", 1)
        assert policy.access("a") is True

    def test_ghost_hit_adapts_p(self):
        policy = ARCPolicy(4)
        for i in range(4):
            policy.insert(f"k{i}", 1)
        policy.access("k0")  # k0 -> T2, so T1 stays below capacity
        policy.insert("k4", 1)  # demotes a T1 victim into ghost B1
        ghosts = [k for k in ("k1", "k2", "k3") if policy.ghost_contains(k)]
        assert ghosts
        before = policy.p
        policy.insert(ghosts[0], 1)  # ghost hit favours recency
        assert policy.p >= before

    def test_scan_resistance(self, rng):
        """A hot working set survives a one-pass scan better under ARC
        than under LRU."""
        def run(policy):
            hot = [f"hot{i}" for i in range(8)]
            hits = 0
            for round_idx in range(60):
                for key in hot:
                    if policy.access(key):
                        hits += 1
                    else:
                        policy.insert(key, 1)
                if round_idx % 2 == 0:
                    scan_key = f"scan{round_idx}"
                    policy.insert(scan_key, 1)
            return hits
        arc_hits = run(ARCPolicy(10))
        assert arc_hits > 0.8 * 60 * 8


class TestLRUKSpecifics:
    def test_k_must_be_positive(self):
        with pytest.raises(Exception):
            LRUKPolicy(10, k=0)

    def test_singly_accessed_evicted_first(self):
        policy = LRUKPolicy(3, k=2)
        policy.insert("a", 1)
        policy.access("a")  # a has 2 accesses -> finite K-distance
        policy.insert("b", 1)
        policy.insert("c", 1)
        evicted = policy.insert("d", 1)  # b is oldest single-access
        assert evicted[0][0] == "b"


class TestTwoQSpecifics:
    def test_reuse_after_fifo_eviction_promotes(self):
        policy = TwoQPolicy(8, in_fraction=0.25, out_fraction=1.0)
        policy.insert("a", 1)
        for i in range(6):
            policy.insert(f"f{i}", 1)
        if "a" not in policy:
            assert policy.ghost_contains("a")
            policy.insert("a", 1)
            assert "a" in policy


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_policy_random_soak(kind, data):
    """Property: random op soup never corrupts used/len accounting."""
    policy = make_policy(kind, 64)
    ops = data.draw(
        st.lists(
            st.tuples(st.integers(0, 30), st.sampled_from(["get", "set", "del"])),
            max_size=200,
        )
    )
    for key_id, op in ops:
        key = f"k{key_id}"
        if op == "get":
            policy.access(key)
        elif op == "set":
            policy.insert(key, (key_id % 5) + 1)
        else:
            policy.remove(key)
        assert policy.used <= 64 + 1e-9
        assert policy.used >= 0
    assert len(list(policy.keys())) == len(policy)
