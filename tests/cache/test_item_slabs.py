"""Tests for CacheItem and slab geometry."""

import pytest

from repro.cache.item import CacheItem
from repro.cache.slabs import SlabGeometry, chunks_for_bytes
from repro.common.constants import ITEM_OVERHEAD_BYTES
from repro.common.errors import CacheError, ConfigurationError


class TestCacheItem:
    def test_total_size_includes_overhead(self):
        item = CacheItem(key="abc", value_size=100)
        assert item.total_size == 3 + 100 + ITEM_OVERHEAD_BYTES

    def test_explicit_key_size(self):
        item = CacheItem(key="abc", value_size=10, key_size=20)
        assert item.total_size == 20 + 10 + ITEM_OVERHEAD_BYTES

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheItem(key="a", value_size=-1)


class TestSlabGeometry:
    def test_default_is_power_of_two_15_classes(self):
        geometry = SlabGeometry.default()
        assert geometry.num_classes == 15
        assert geometry.chunk_sizes[0] == 64
        assert geometry.chunk_sizes[-1] == 1 << 20
        for a, b in zip(geometry.chunk_sizes, geometry.chunk_sizes[1:]):
            assert b == 2 * a

    def test_class_for_size_boundaries(self):
        geometry = SlabGeometry.default()
        assert geometry.class_for_size(1) == 0
        assert geometry.class_for_size(64) == 0
        assert geometry.class_for_size(65) == 1
        assert geometry.class_for_size(128) == 1
        assert geometry.class_for_size(129) == 2

    def test_item_too_large_raises(self):
        geometry = SlabGeometry.default()
        with pytest.raises(CacheError):
            geometry.class_for_size((1 << 20) + 1)

    def test_non_positive_size_raises(self):
        with pytest.raises(CacheError):
            SlabGeometry.default().class_for_size(0)

    def test_memcached_geometry_growth(self):
        geometry = SlabGeometry.memcached()
        sizes = geometry.chunk_sizes
        assert sizes[0] == 96
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            SlabGeometry((128, 64))

    def test_describe_mentions_every_class(self):
        geometry = SlabGeometry.default()
        text = geometry.describe()
        assert str(1 << 20) in text
        assert "64" in text

    def test_class_ranges_cover_contiguously(self):
        geometry = SlabGeometry.default()
        previous_hi = 0
        for _, lo, hi in geometry.class_ranges():
            assert lo == previous_hi + 1
            previous_hi = hi


class TestChunksForBytes:
    def test_floor_division(self):
        assert chunks_for_bytes(1000, 256) == 3

    def test_zero_capacity(self):
        assert chunks_for_bytes(0, 64) == 0

    def test_invalid_chunk(self):
        with pytest.raises(ConfigurationError):
            chunks_for_bytes(100, 0)
