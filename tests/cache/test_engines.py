"""Tests for the baseline engines and the multi-tenant server."""

import pytest

from repro.cache.engines import FirstComeFirstServeEngine, PlannedEngine
from repro.cache.log_structured import GlobalLRUEngine
from repro.cache.server import CacheServer
from repro.cache.slabs import SlabGeometry
from repro.common.errors import ConfigurationError
from repro.workloads.trace import Request

GEO = SlabGeometry.default()


def get(key, size=100, app="a", t=0.0):
    return Request(time=t, app=app, key=key, op="get", value_size=size)


def put(key, size=100, app="a", t=0.0):
    return Request(time=t, app=app, key=key, op="set", value_size=size)


class TestFCFSEngine:
    def test_fill_on_miss_then_hit(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        assert engine.process(get("k")).hit is False
        assert engine.process(get("k")).hit is True

    def test_greedy_growth_until_budget(self):
        engine = FirstComeFirstServeEngine("a", 10 * 256, GEO)
        for i in range(50):
            engine.process(get(f"k{i}", size=100))  # class 2, 256B chunks
        total = sum(engine.capacities().values())
        assert total <= 10 * 256

    def test_per_class_eviction_after_full(self):
        engine = FirstComeFirstServeEngine("a", 8 * 256, GEO)
        for i in range(20):
            engine.process(get(f"k{i}", size=100))
        # Still serves the most recent keys.
        assert engine.process(get("k19")).hit is True
        assert engine.process(get("k0")).hit is False

    def test_steal_for_starved_class(self):
        engine = FirstComeFirstServeEngine("a", 4096, GEO)
        for i in range(30):
            engine.process(get(f"small{i}", size=100))
        # A brand-new class arrives with memory exhausted.
        outcome = engine.process(get("big0", size=3000))
        assert outcome.hit is False
        assert engine.process(get("big0", size=3000)).hit is True

    def test_delete(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        engine.process(put("k"))
        removed = engine.process(
            Request(0.0, "a", "k", "delete", value_size=100)
        )
        assert removed.hit is True
        assert engine.process(get("k")).hit is False

    def test_class_migration_on_resize(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        engine.process(put("k", size=100))
        engine.process(put("k", size=5000))  # moves to a bigger class
        assert engine.process(get("k", size=5000)).hit is True
        # Only one copy exists.
        assert sum(len(q) for q in engine.queues.values()) == 1

    def test_shrink_budget_evicts(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        for i in range(100):
            engine.process(get(f"k{i}", size=1000))
        before = engine.used_bytes()
        engine.shrink_budget(before / 2)
        assert engine.used_bytes() <= engine.budget_bytes + 1e-6

    def test_no_donor_bypasses_store(self):
        """Regression: budget exhausted, new class, and no donor owns a
        whole chunk -- the item must be bypassed, not inserted into a
        queue that can never fit it (which left a ghost residency entry
        and counted a phantom self-eviction)."""
        engine = FirstComeFirstServeEngine("a", 2 * 256, GEO)
        engine.process(get("s0", size=100))
        engine.process(get("s1", size=100))
        used_before = engine.used_bytes()
        outcome = engine.process(put("big", size=3000))
        assert outcome.evicted == 0
        assert "big" not in engine._class_of_key
        assert engine.used_bytes() == used_before
        # The bypassed key is not resident: a later GET misses and a
        # DELETE reports a miss instead of a ghost hit.
        assert engine.process(get("big", size=3000)).hit is False
        removed = engine.process(
            Request(0.0, "a", "big", "delete", value_size=3000)
        )
        assert removed.hit is False
        # The donor class that could not donate is untouched.
        assert engine.process(get("s0")).hit is True

    def test_zero_capacity_class_never_holds_items(self):
        """Repeated over-capacity stores must not inflate eviction or
        insert counts."""
        engine = FirstComeFirstServeEngine("a", 2 * 256, GEO)
        engine.process(get("s0", size=100))
        engine.process(get("s1", size=100))
        inserts_before = engine.ops.inserts
        evictions_before = engine.ops.evictions
        for _ in range(5):
            engine.process(put("big", size=3000))
        assert engine.ops.inserts == inserts_before
        assert engine.ops.evictions == evictions_before
        big_class = GEO.class_for_size(3000)
        assert len(engine.queues[big_class]) == 0


class TestBudgetEnforcement:
    """grow_budget/shrink_budget round trips for both engines."""

    def test_fcfs_shrink_resyncs_capacity_total(self):
        engine = FirstComeFirstServeEngine("a", 64 * 256, GEO)
        for i in range(64):
            engine.process(get(f"k{i}", size=100))
        # Inject float drift: _enforce_budget must re-sync from the queues.
        engine._capacity_total += 1e-7
        evicted = engine.shrink_budget(32 * 256)
        assert engine._capacity_total == sum(
            q.capacity for q in engine.queues.values()
        )
        assert engine._capacity_total <= engine.budget_bytes
        assert evicted == 32  # one item per 256B chunk reclaimed

    def test_fcfs_grow_shrink_round_trip(self):
        engine = FirstComeFirstServeEngine("a", 16 * 256, GEO)
        for i in range(16):
            engine.process(get(f"k{i}", size=100))
        engine.grow_budget(16 * 256)
        for i in range(16, 32):
            engine.process(get(f"k{i}", size=100))
        assert engine.used_bytes() == 32 * 256
        evicted = engine.shrink_budget(16 * 256)
        assert engine.budget_bytes == 16 * 256
        assert evicted == 16
        assert engine.used_bytes() <= engine.budget_bytes
        # The engine keeps serving and refilling after the shrink.
        assert engine.process(get("k31")).hit is True
        engine.process(get("fresh", size=100))
        assert engine.process(get("fresh", size=100)).hit is True

    def test_fcfs_shrink_prefers_largest_class(self):
        engine = FirstComeFirstServeEngine("a", 4 * 256 + 4 * 1024, GEO)
        for i in range(4):
            engine.process(get(f"small{i}", size=100))
        for i in range(4):
            engine.process(get(f"large{i}", size=900))
        engine.shrink_budget(2 * 1024)
        caps = engine.capacities()
        small_class = GEO.class_for_size(200)
        large_class = GEO.class_for_size(1000)
        # The 1024B class is always the max-capacity donor here.
        assert caps[large_class] == 2 * 1024
        assert caps[small_class] == 4 * 256

    def test_fcfs_shrink_to_zero_evicts_everything(self):
        engine = FirstComeFirstServeEngine("a", 8 * 256, GEO)
        for i in range(8):
            engine.process(get(f"k{i}", size=100))
        evicted = engine.shrink_budget(8 * 256)
        assert evicted == 8
        assert engine.budget_bytes == 0.0
        assert engine.used_bytes() == 0.0
        assert engine._capacity_total == 0.0

    def test_planned_shrink_scales_proportionally(self):
        plan = {2: 8 * 256.0, 4: 8 * 1024.0}
        budget = sum(plan.values())
        engine = PlannedEngine("a", budget, GEO, plan)
        for i in range(8):
            engine.process(get(f"small{i}", size=100))
        for i in range(8):
            engine.process(get(f"large{i}", size=900))
        evicted = engine.shrink_budget(budget / 2)
        caps = engine.capacities()
        assert caps[2] == pytest.approx(4 * 256.0)
        assert caps[4] == pytest.approx(4 * 1024.0)
        assert evicted > 0
        assert engine.used_bytes() <= engine.budget_bytes + 1e-6
        assert engine._capacity_total == pytest.approx(
            sum(q.capacity for q in engine.queues.values())
        )

    def test_planned_shrink_within_budget_is_noop(self):
        plan = {2: 4 * 256.0}
        engine = PlannedEngine("a", 1 << 20, GEO, plan)
        for i in range(4):
            engine.process(get(f"k{i}", size=100))
        evicted = engine.shrink_budget(1 << 19)  # still >= plan total
        assert evicted == 0
        assert engine.capacities()[2] == 4 * 256.0
        assert engine.process(get("k3")).hit is True

    def test_grow_and_shrink_reject_negative_deltas(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        with pytest.raises(ConfigurationError):
            engine.grow_budget(-1.0)
        with pytest.raises(ConfigurationError):
            engine.shrink_budget(-1.0)


class TestPlannedEngine:
    def test_plan_respected(self):
        plan = {2: 10 * 256}
        engine = PlannedEngine("a", 1 << 20, GEO, plan)
        for i in range(20):
            engine.process(get(f"k{i}", size=100))
        assert engine.capacities()[2] == 10 * 256

    def test_zero_capacity_class_is_bypass(self):
        engine = PlannedEngine("a", 1 << 20, GEO, {2: 0.0})
        engine.process(get("k", size=100))
        assert engine.process(get("k", size=100)).hit is False

    def test_overcommitted_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            PlannedEngine("a", 100, GEO, {2: 1000.0})

    def test_unplanned_class_bypasses(self):
        engine = PlannedEngine("a", 1 << 20, GEO, {2: 2560.0})
        engine.process(get("big", size=5000))
        assert engine.process(get("big", size=5000)).hit is False

    def test_starved_class_leaves_no_residue(self):
        """Regression: bypassed stores must not register residency --
        the ghost entry made DELETE report a hit and leaked one
        _class_of_key entry per unique starved key."""
        engine = PlannedEngine("a", 1 << 20, GEO, {2: 0.0})
        for i in range(10):
            engine.process(get(f"k{i}", size=100))
        assert engine._class_of_key == {}
        assert engine.ops.inserts == 0
        removed = engine.process(
            Request(0.0, "a", "k0", "delete", value_size=100)
        )
        assert removed.hit is False


class TestGlobalLRUEngine:
    def test_no_chunk_rounding(self):
        engine = GlobalLRUEngine("a", 1000, GEO)
        engine.process(get("k", size=500))
        # key+value bytes, not a chunk: 1 item of ~501..505B
        assert engine.used_bytes() < 600

    def test_byte_weighted_eviction(self):
        engine = GlobalLRUEngine("a", 1000, GEO)
        engine.process(get("a", size=400))
        engine.process(get("b", size=400))
        engine.process(get("c", size=400))  # evicts "a"
        assert engine.process(get("a", size=400)).hit is False
        assert engine.process(get("c", size=400)).hit is True

    def test_large_items_displace_small(self):
        """The Table 2 caveat: global LRU still lets large items push
        out many small ones."""
        engine = GlobalLRUEngine("a", 2000, GEO)
        for i in range(10):
            engine.process(get(f"s{i}", size=100))
        engine.process(get("huge", size=1800))
        survivors = sum(
            engine.process(get(f"s{i}", size=100)).hit for i in range(10)
        )
        assert survivors == 0


class TestCacheServer:
    def test_routes_by_app(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        server.add_app(FirstComeFirstServeEngine("b", 1 << 20, GEO))
        server.process(get("k", app="a"))
        assert server.process(get("k", app="a")).hit is True
        assert server.process(get("k", app="b")).hit is False

    def test_duplicate_app_rejected(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        with pytest.raises(ConfigurationError):
            server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))

    def test_unknown_app_rejected(self):
        server = CacheServer(GEO)
        with pytest.raises(ConfigurationError):
            server.process(get("k", app="ghost"))

    def test_observer_sees_every_request(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        seen = []
        server.add_observer(lambda req, out: seen.append((req.key, out.hit)))
        server.replay([get("x"), get("x")])
        assert seen == [("x", False), ("x", True)]

    def test_memory_accounting(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        server.process(get("k"))
        assert 0 < server.memory_in_use() <= server.memory_reserved()

    def test_geometry_mismatch_raises_even_with_observers(self):
        """Regression: the observer fallback returned before the
        slab-geometry check, silently accepting a trace compiled for a
        different ladder whenever observers were attached."""
        from repro.workloads.compiled import CompiledTrace

        other_geo = SlabGeometry((64, 4096))
        compiled = CompiledTrace.compile([get("k")], other_geo)
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        server.add_observer(lambda req, out: None)
        with pytest.raises(ConfigurationError, match="slab geometry"):
            server.replay_compiled(compiled)

    def test_matching_geometry_with_observers_falls_back(self):
        from repro.workloads.compiled import CompiledTrace

        compiled = CompiledTrace.compile([get("k"), get("k")], GEO)
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        seen = []
        server.add_observer(lambda req, out: seen.append(out.hit))
        server.replay_compiled(compiled)
        assert seen == [False, True]
