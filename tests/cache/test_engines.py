"""Tests for the baseline engines and the multi-tenant server."""

import pytest

from repro.cache.engines import FirstComeFirstServeEngine, PlannedEngine
from repro.cache.log_structured import GlobalLRUEngine
from repro.cache.server import CacheServer
from repro.cache.slabs import SlabGeometry
from repro.common.errors import ConfigurationError
from repro.workloads.trace import Request

GEO = SlabGeometry.default()


def get(key, size=100, app="a", t=0.0):
    return Request(time=t, app=app, key=key, op="get", value_size=size)


def put(key, size=100, app="a", t=0.0):
    return Request(time=t, app=app, key=key, op="set", value_size=size)


class TestFCFSEngine:
    def test_fill_on_miss_then_hit(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        assert engine.process(get("k")).hit is False
        assert engine.process(get("k")).hit is True

    def test_greedy_growth_until_budget(self):
        engine = FirstComeFirstServeEngine("a", 10 * 256, GEO)
        for i in range(50):
            engine.process(get(f"k{i}", size=100))  # class 2, 256B chunks
        total = sum(engine.capacities().values())
        assert total <= 10 * 256

    def test_per_class_eviction_after_full(self):
        engine = FirstComeFirstServeEngine("a", 8 * 256, GEO)
        for i in range(20):
            engine.process(get(f"k{i}", size=100))
        # Still serves the most recent keys.
        assert engine.process(get("k19")).hit is True
        assert engine.process(get("k0")).hit is False

    def test_steal_for_starved_class(self):
        engine = FirstComeFirstServeEngine("a", 4096, GEO)
        for i in range(30):
            engine.process(get(f"small{i}", size=100))
        # A brand-new class arrives with memory exhausted.
        outcome = engine.process(get("big0", size=3000))
        assert outcome.hit is False
        assert engine.process(get("big0", size=3000)).hit is True

    def test_delete(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        engine.process(put("k"))
        removed = engine.process(
            Request(0.0, "a", "k", "delete", value_size=100)
        )
        assert removed.hit is True
        assert engine.process(get("k")).hit is False

    def test_class_migration_on_resize(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        engine.process(put("k", size=100))
        engine.process(put("k", size=5000))  # moves to a bigger class
        assert engine.process(get("k", size=5000)).hit is True
        # Only one copy exists.
        assert sum(len(q) for q in engine.queues.values()) == 1

    def test_shrink_budget_evicts(self):
        engine = FirstComeFirstServeEngine("a", 1 << 20, GEO)
        for i in range(100):
            engine.process(get(f"k{i}", size=1000))
        before = engine.used_bytes()
        engine.shrink_budget(before / 2)
        assert engine.used_bytes() <= engine.budget_bytes + 1e-6


class TestPlannedEngine:
    def test_plan_respected(self):
        plan = {2: 10 * 256}
        engine = PlannedEngine("a", 1 << 20, GEO, plan)
        for i in range(20):
            engine.process(get(f"k{i}", size=100))
        assert engine.capacities()[2] == 10 * 256

    def test_zero_capacity_class_is_bypass(self):
        engine = PlannedEngine("a", 1 << 20, GEO, {2: 0.0})
        engine.process(get("k", size=100))
        assert engine.process(get("k", size=100)).hit is False

    def test_overcommitted_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            PlannedEngine("a", 100, GEO, {2: 1000.0})

    def test_unplanned_class_bypasses(self):
        engine = PlannedEngine("a", 1 << 20, GEO, {2: 2560.0})
        engine.process(get("big", size=5000))
        assert engine.process(get("big", size=5000)).hit is False


class TestGlobalLRUEngine:
    def test_no_chunk_rounding(self):
        engine = GlobalLRUEngine("a", 1000, GEO)
        engine.process(get("k", size=500))
        # key+value bytes, not a chunk: 1 item of ~501..505B
        assert engine.used_bytes() < 600

    def test_byte_weighted_eviction(self):
        engine = GlobalLRUEngine("a", 1000, GEO)
        engine.process(get("a", size=400))
        engine.process(get("b", size=400))
        engine.process(get("c", size=400))  # evicts "a"
        assert engine.process(get("a", size=400)).hit is False
        assert engine.process(get("c", size=400)).hit is True

    def test_large_items_displace_small(self):
        """The Table 2 caveat: global LRU still lets large items push
        out many small ones."""
        engine = GlobalLRUEngine("a", 2000, GEO)
        for i in range(10):
            engine.process(get(f"s{i}", size=100))
        engine.process(get("huge", size=1800))
        survivors = sum(
            engine.process(get(f"s{i}", size=100)).hit for i in range(10)
        )
        assert survivors == 0


class TestCacheServer:
    def test_routes_by_app(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        server.add_app(FirstComeFirstServeEngine("b", 1 << 20, GEO))
        server.process(get("k", app="a"))
        assert server.process(get("k", app="a")).hit is True
        assert server.process(get("k", app="b")).hit is False

    def test_duplicate_app_rejected(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        with pytest.raises(ConfigurationError):
            server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))

    def test_unknown_app_rejected(self):
        server = CacheServer(GEO)
        with pytest.raises(ConfigurationError):
            server.process(get("k", app="ghost"))

    def test_observer_sees_every_request(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        seen = []
        server.add_observer(lambda req, out: seen.append((req.key, out.hit)))
        server.replay([get("x"), get("x")])
        assert seen == [("x", False), ("x", True)]

    def test_memory_accounting(self):
        server = CacheServer(GEO)
        server.add_app(FirstComeFirstServeEngine("a", 1 << 20, GEO))
        server.process(get("k"))
        assert 0 < server.memory_in_use() <= server.memory_reserved()
