"""Tests for counters, registries and timelines."""

import itertools

import pytest

from repro.cache.stats import (
    OP_DELETE,
    OP_GET,
    OP_SET,
    AccessOutcome,
    HitMissCounter,
    OpCounter,
    StatsRegistry,
    TimelineRecorder,
    pack_outcome,
)


def outcome(hit, app="a", op="get", slab=0, shadow=False, evicted=0):
    return AccessOutcome(
        hit=hit, app=app, op=op, slab_class=slab,
        shadow_hit=shadow, evicted=evicted,
    )


class TestHitMissCounter:
    def test_hit_rate(self):
        counter = HitMissCounter()
        counter.record(outcome(True))
        counter.record(outcome(False))
        counter.record(outcome(False))
        assert counter.hit_rate() == pytest.approx(1 / 3)
        assert counter.misses == 2

    def test_sets_do_not_affect_hit_rate(self):
        counter = HitMissCounter()
        counter.record(outcome(False, op="set"))
        assert counter.hit_rate() == 0.0
        assert counter.sets == 1
        assert counter.gets == 0

    def test_empty_hit_rate_is_zero(self):
        assert HitMissCounter().hit_rate() == 0.0

    def test_merge(self):
        a, b = HitMissCounter(), HitMissCounter()
        a.record(outcome(True))
        b.record(outcome(False, evicted=2))
        a.merge(b)
        assert a.gets == 2
        assert a.evictions == 2


class TestStatsRegistry:
    def test_per_app_and_per_class(self):
        registry = StatsRegistry()
        registry.record(outcome(True, app="x", slab=1))
        registry.record(outcome(False, app="x", slab=2))
        registry.record(outcome(True, app="y", slab=1))
        assert registry.app_hit_rate("x") == pytest.approx(0.5)
        assert registry.app_hit_rate("y") == pytest.approx(1.0)
        assert registry.app_hit_rate("missing") == 0.0
        x_classes = registry.class_counters_for("x")
        assert set(x_classes) == {1, 2}
        assert registry.total.gets == 3

    def test_record_code_bulk_equals_repeated_record_code(self):
        """Pin the bulk flush to the per-request decode, flag by flag.

        ``record_code_bulk`` mirrors ``record_code``'s bit decode
        instead of delegating (hot path); this sweep over every
        hit/shadow/dead flag combination, op, slab class and eviction
        count is what keeps the two copies from drifting.
        """
        codes = [
            pack_outcome(hit, slab, shadow, evicted, dead=dead)
            for hit, shadow, dead in itertools.product(
                (False, True), repeat=3
            )
            for slab in (None, 0, 3)
            for evicted in (0, 1, 5)
        ]
        for op in (OP_GET, OP_SET, OP_DELETE):
            for code in codes:
                for count in (1, 2, 7):
                    sequential = StatsRegistry()
                    for _ in range(count):
                        sequential.record_code("app", op, code)
                    bulk = StatsRegistry()
                    bulk.record_code_bulk("app", op, code, count)
                    for seq_reg, bulk_reg in (
                        (sequential.total, bulk.total),
                        (sequential.by_app["app"], bulk.by_app["app"]),
                    ):
                        assert (
                            seq_reg.get_hits,
                            seq_reg.get_misses,
                            seq_reg.sets,
                            seq_reg.shadow_hits,
                            seq_reg.evictions,
                            seq_reg.dead_requests,
                        ) == (
                            bulk_reg.get_hits,
                            bulk_reg.get_misses,
                            bulk_reg.sets,
                            bulk_reg.shadow_hits,
                            bulk_reg.evictions,
                            bulk_reg.dead_requests,
                        )
                    assert set(sequential.by_app_class) == set(
                        bulk.by_app_class
                    )


class TestOpCounter:
    def test_total_and_merge(self):
        ops = OpCounter(hash_lookups=2, inserts=1)
        other = OpCounter(promotes=3, routes=1)
        ops.merge(other)
        assert ops.total() == 7


class TestTimelineRecorder:
    def test_samples_at_interval(self):
        recorder = TimelineRecorder(interval=10.0)
        assert recorder.maybe_sample(0.0, {"x": 1.0}) is True
        assert recorder.maybe_sample(5.0, {"x": 2.0}) is False
        assert recorder.maybe_sample(10.0, {"x": 3.0}) is True
        rows = recorder.as_rows()
        assert len(rows) == 2
        assert rows[1][1]["x"] == 3.0

    def test_new_series_backfilled(self):
        recorder = TimelineRecorder(interval=1.0)
        recorder.maybe_sample(0.0, {"a": 1.0})
        recorder.maybe_sample(1.0, {"a": 2.0, "b": 9.0})
        rows = recorder.as_rows()
        assert rows[0][1]["b"] == 0.0
        assert rows[1][1]["b"] == 9.0

    def test_missing_series_carries_forward(self):
        recorder = TimelineRecorder(interval=1.0)
        recorder.maybe_sample(0.0, {"a": 5.0})
        recorder.maybe_sample(1.0, {})
        assert recorder.as_rows()[1][1]["a"] == 5.0
