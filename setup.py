"""Legacy setup shim.

The environment this reproduction targets may lack the ``wheel`` package,
which PEP 517 editable installs require; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) then still works through this
shim. Uninstalled checkouts run everything via ``PYTHONPATH=src`` and
the ``python -m`` spellings (``python -m repro.experiments``,
``python -m repro.serve``).
"""

from setuptools import find_packages, setup

setup(
    name="cliffhanger-repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.cli:main",
            "repro-serve=repro.serve.cli:main",
        ]
    },
)
