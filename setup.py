"""Legacy setup shim.

The environment this reproduction targets may lack the ``wheel`` package,
which PEP 517 editable installs require; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) then still works through this
shim. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
