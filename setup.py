"""Legacy setup shim; all metadata lives in pyproject.toml.

The environment this reproduction targets may lack the ``wheel`` package,
which PEP 517 editable installs require; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) then still works through this
shim. Uninstalled checkouts run everything via ``PYTHONPATH=src`` and
the ``python -m`` spellings (``python -m repro.experiments``,
``python -m repro.serve``, ``python -m repro.lint``).
"""

from setuptools import setup

setup()
